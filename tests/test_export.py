"""Result export (repro.sim.export)."""

import csv
import io
import json

from repro.sim.export import (
    result_to_dict,
    result_to_json,
    results_to_csv,
    table_to_csv,
    table_to_dict,
    table_to_json,
)
from repro.sim.reporting import FAILED_CELL, ExperimentTable, result_cells
from repro.sim.results import FailedResult, is_failure
from repro.sim.simulator import run


def sample_table():
    table = ExperimentTable("Table X", "demo", ["a", "b"])
    table.add_row(1, 2.5)
    table.add_row("x,y", 3)
    table.add_note("hello")
    return table


def test_table_to_csv_quotes_commas():
    text = table_to_csv(sample_table())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["a", "b"]
    assert rows[2][0] == "x,y"


def test_table_to_dict_and_json():
    payload = table_to_dict(sample_table())
    assert payload["id"] == "Table X"
    assert payload["notes"] == ["hello"]
    parsed = json.loads(table_to_json(sample_table()))
    assert parsed == payload


def test_result_to_dict_fields():
    result = run("FUSION", "adpcm", "tiny")
    payload = result_to_dict(result)
    assert payload["system"] == "FUSION"
    assert payload["benchmark"] == "adpcm"
    assert payload["accel_cycles"] > 0
    assert payload["energy_pj"] > 0
    assert "local" in payload["energy_components_pj"]
    assert "stats" not in payload


def test_result_to_dict_with_stats():
    result = run("FUSION", "adpcm", "tiny")
    payload = result_to_dict(result, include_stats=True)
    assert payload["stats"]["l1x.accesses"] > 0


def test_result_to_json_parses():
    result = run("SCRATCH", "adpcm", "tiny")
    parsed = json.loads(result_to_json(result))
    assert parsed["dma_kb"] > 0


def test_results_to_csv_comparison():
    results = [run(s, "adpcm", "tiny")
               for s in ("SCRATCH", "SHARED", "FUSION")]
    text = results_to_csv(results)
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) == 4
    assert "system" in rows[0]
    assert "energy_local_pj" in rows[0]
    assert {row[0] for row in rows[1:]} == {"SCRATCH", "SHARED",
                                            "FUSION"}


def test_results_to_csv_empty():
    assert results_to_csv([]) == ""


# -- failure holes ---------------------------------------------------------

def test_is_failure_discriminates():
    assert is_failure(FailedResult("FUSION", "adpcm"))
    assert not is_failure(run("FUSION", "adpcm", "tiny"))
    # Anything without an ``ok`` attribute is treated as a result.
    assert not is_failure(object())


def test_result_to_dict_failure_hole():
    hole = FailedResult("FUSION", "adpcm", "tiny",
                        error="TimeoutError('boom')", attempts=3,
                        meta={"source": "parallel"})
    payload = result_to_dict(hole)
    assert payload["status"] == "failed"
    assert payload["error"] == "TimeoutError('boom')"
    assert payload["attempts"] == 3
    assert payload["engine"] == {"source": "parallel"}
    assert "accel_cycles" not in payload


def test_results_to_csv_with_failure_holes():
    """A failed first row must not dictate the header shape, and the
    hole renders blanks plus its error provenance."""
    good = run("FUSION", "adpcm", "tiny")
    hole = FailedResult("SHARED", "adpcm", "tiny", error="boom",
                        attempts=2)
    rows = list(csv.DictReader(io.StringIO(results_to_csv([hole,
                                                           good]))))
    assert rows[0]["system"] == "SHARED"
    assert rows[0]["status"] == "failed" and rows[0]["error"] == "boom"
    assert rows[0]["accel_cycles"] == ""
    assert rows[1]["status"] == "ok" and rows[1]["error"] == ""
    assert float(rows[1]["energy_pj"]) > 0


def test_results_to_csv_all_failed():
    text = results_to_csv([FailedResult("FUSION", "adpcm",
                                        error="x")])
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows[0]["system"] == "FUSION"
    assert rows[0]["status"] == "failed" and rows[0]["error"] == "x"


def test_result_cells_guards_holes():
    extractors = [lambda r: r.accel_cycles,
                  lambda r: r.energy.total_pj]
    assert result_cells(FailedResult("FUSION", "adpcm"),
                        extractors) == [FAILED_CELL, FAILED_CELL]
    cells = result_cells(run("FUSION", "adpcm", "tiny"), extractors)
    assert all(value > 0 for value in cells)
