"""Result export (repro.sim.export)."""

import csv
import io
import json

from repro.sim.export import (
    result_to_dict,
    result_to_json,
    results_to_csv,
    table_to_csv,
    table_to_dict,
    table_to_json,
)
from repro.sim.reporting import ExperimentTable
from repro.sim.simulator import run


def sample_table():
    table = ExperimentTable("Table X", "demo", ["a", "b"])
    table.add_row(1, 2.5)
    table.add_row("x,y", 3)
    table.add_note("hello")
    return table


def test_table_to_csv_quotes_commas():
    text = table_to_csv(sample_table())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["a", "b"]
    assert rows[2][0] == "x,y"


def test_table_to_dict_and_json():
    payload = table_to_dict(sample_table())
    assert payload["id"] == "Table X"
    assert payload["notes"] == ["hello"]
    parsed = json.loads(table_to_json(sample_table()))
    assert parsed == payload


def test_result_to_dict_fields():
    result = run("FUSION", "adpcm", "tiny")
    payload = result_to_dict(result)
    assert payload["system"] == "FUSION"
    assert payload["benchmark"] == "adpcm"
    assert payload["accel_cycles"] > 0
    assert payload["energy_pj"] > 0
    assert "local" in payload["energy_components_pj"]
    assert "stats" not in payload


def test_result_to_dict_with_stats():
    result = run("FUSION", "adpcm", "tiny")
    payload = result_to_dict(result, include_stats=True)
    assert payload["stats"]["l1x.accesses"] > 0


def test_result_to_json_parses():
    result = run("SCRATCH", "adpcm", "tiny")
    parsed = json.loads(result_to_json(result))
    assert parsed["dma_kb"] > 0


def test_results_to_csv_comparison():
    results = [run(s, "adpcm", "tiny")
               for s in ("SCRATCH", "SHARED", "FUSION")]
    text = results_to_csv(results)
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) == 4
    assert "system" in rows[0]
    assert "energy_local_pj" in rows[0]
    assert {row[0] for row in rows[1:]} == {"SCRATCH", "SHARED",
                                            "FUSION"}


def test_results_to_csv_empty():
    assert results_to_csv([]) == ""
