"""The accelerator cycle model (repro.accel.core)."""

import pytest

from repro.accel.core import AxcCore
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp


def make_core(issue_width=4):
    stats = StatsRegistry()
    return AxcCore(0, stats, issue_width=issue_width), stats


def trace(ops):
    return FunctionTrace(name="f", benchmark="b", ops=ops)


def fixed_latency(latency):
    return lambda op, now: latency


def loads(n, stride=64):
    return [MemOp(AccessType.LOAD, i * stride) for i in range(n)]


def test_compute_advances_by_issue_width():
    core, _ = make_core(issue_width=4)
    end = core.run(trace([ComputeOp(int_ops=8)]), 0, fixed_latency(1), 1)
    assert end == 2  # 8 ops / 4-wide


def test_compute_minimum_one_cycle():
    core, _ = make_core(issue_width=4)
    end = core.run(trace([ComputeOp(int_ops=1)]), 0, fixed_latency(1), 1)
    assert end == 1


def test_single_memory_op_latency_on_tail():
    core, _ = make_core()
    end = core.run(trace(loads(1)), 0, fixed_latency(10), 1)
    assert end == 10


def test_mlp_overlaps_latency():
    core, _ = make_core()
    serial = core.run(trace(loads(8)), 0, fixed_latency(12), 1)
    core2, _ = make_core()
    overlapped = core2.run(trace(loads(8)), 0, fixed_latency(12), 4)
    assert overlapped < serial
    # Little's law bound: 8 ops at 12 cycles with 4 outstanding.
    assert overlapped >= 8 * 12 / 4


def test_high_mlp_approaches_issue_rate():
    core, _ = make_core()
    end = core.run(trace(loads(100)), 0, fixed_latency(4), 8)
    assert end <= 100 + 10  # ~1 op/cycle


def test_issue_interval_throttles():
    core, _ = make_core()
    base = core.run(trace(loads(50)), 0, fixed_latency(1), 8)
    core2, _ = make_core()
    throttled = core2.run(trace(loads(50)), 0, fixed_latency(1), 8,
                          issue_interval=2)
    assert throttled >= 2 * base - 2


def test_mshr_merge_delays_same_block_access():
    core, stats = make_core()

    def miss_then_hit(op, now):
        return 100 if now == 0 else 1

    ops = [MemOp(AccessType.LOAD, 0), MemOp(AccessType.LOAD, 8)]
    end = core.run(trace(ops), 0, miss_then_hit, 4)
    # The second access is to the same line: it cannot complete before
    # the outstanding fill.
    assert end >= 100
    assert stats.get("axc.core0.mshr_merges") == 1


def test_start_time_offsets_completion():
    core, _ = make_core()
    end = core.run(trace(loads(1)), 1000, fixed_latency(5), 1)
    assert end == 1005


def test_stats_recorded():
    core, stats = make_core()
    core.run(trace([ComputeOp(int_ops=4, fp_ops=2)] + loads(3)), 0,
             fixed_latency(1), 2)
    assert stats.get("axc.core0.mem_ops") == 3
    assert stats.get("axc.core0.int_ops") == 4
    assert stats.get("axc.core0.fp_ops") == 2
    assert stats.get("axc.invocations") == 1
    assert stats.get("axc.compute.energy_pj") > 0


def test_mlp_stall_cycles_counted():
    core, stats = make_core()
    core.run(trace(loads(8)), 0, fixed_latency(50), 1)
    assert stats.get("axc.core0.mlp_stall_cycles") > 0


def test_fractional_mlp_floors_to_one():
    core, _ = make_core()
    end = core.run(trace(loads(2)), 0, fixed_latency(10), 0.4)
    assert end >= 20  # serialised
