"""Interleaving exploration and shrinking (repro.check.explorer)."""

import pytest

from repro.check import (InvalidSchedule, MUTATIONS, by_name,
                         execute_schedule, explore, random_walks)
from repro.check.scenarios import Agent, Scenario


def test_execute_schedule_replays_choices():
    scenario = by_name("dx-forward")
    outcome = execute_schedule(scenario, (0, 0, 1, 1))
    assert outcome.completed
    assert outcome.violations == ()
    assert outcome.choices == (0, 0, 1, 1)
    assert dict(outcome.final_values)[0] == "axc0.w1"


def test_execute_schedule_rejects_exhausted_agent():
    scenario = by_name("dx-forward")   # axc0 has two events
    with pytest.raises(InvalidSchedule):
        execute_schedule(scenario, (0, 0, 0))


def test_execute_schedule_is_deterministic():
    scenario = by_name("acc-host-mix")
    a = execute_schedule(scenario, (0, 1, 2, 0, 2, 0))
    b = execute_schedule(scenario, (0, 1, 2, 0, 2, 0))
    assert a.state_hash == b.state_hash
    assert a.observations == b.observations
    assert a.final_values == b.final_values


def test_explore_covers_every_interleaving_when_unpruned():
    # Two agents with 1 and 2 events: C(3,1) = 3 interleavings.
    scenario = Scenario(
        name="unit-tiny", kind="acc",
        agents=(Agent("axc", (("store", 0),)),
                Agent("axc", (("load", 0), ("load", 0)))))
    result = explore(scenario, depth=scenario.total_events, prune=False)
    assert result.ok
    assert result.interleavings == 3


def test_explore_pruning_preserves_outcomes():
    scenario = by_name("dx-forward")
    pruned = explore(scenario, depth=scenario.total_events, prune=True)
    full = explore(scenario, depth=scenario.total_events, prune=False)
    assert pruned.ok and full.ok
    assert pruned.outcomes == full.outcomes
    assert pruned.interleavings <= full.interleavings


def test_explore_respects_depth_bound():
    scenario = by_name("acc-two-writers")   # 6 events total
    result = explore(scenario, depth=2)
    assert result.ok
    assert result.interleavings == 0   # nothing completes in 2 steps
    assert result.truncated > 0


def test_explore_catches_mutation_and_shrinks():
    scenario = by_name("acc-two-writers")
    mutation = MUTATIONS["drop-write-epoch-lock"]
    result = explore(scenario, depth=scenario.total_events,
                     mutation=mutation)
    assert result.failure is not None
    failure = result.failure
    assert failure.violations[0].invariant in mutation.expected
    # The shrunk (scenario, schedule) pair must itself reproduce the
    # violation — shrinking only accepts genuine replays.
    replay = execute_schedule(failure.scenario, failure.choices,
                              mutation=mutation)
    assert replay.failed
    assert replay.violations[0].invariant == \
        failure.violations[0].invariant
    # And it must be no larger than the original program.
    assert failure.scenario.total_events <= scenario.total_events


def test_random_walks_are_seed_deterministic():
    scenario = by_name("acc-host-mix")
    mutation = MUTATIONS["skew-ltime"]
    runs_a, failure_a = random_walks(scenario, 20, seed=7,
                                     mutation=mutation, shrink=False)
    runs_b, failure_b = random_walks(scenario, 20, seed=7,
                                     mutation=mutation, shrink=False)
    assert (runs_a, failure_a is None) == (runs_b, failure_b is None)
    if failure_a is not None:
        assert failure_a.choices == failure_b.choices
        assert failure_a.schedule_index == failure_b.schedule_index


def test_random_walks_clean_on_correct_protocol():
    scenario = by_name("shared-race")
    runs, failure = random_walks(scenario, 15, seed=3)
    assert runs == 15
    assert failure is None


def test_failure_to_dict_is_replayable():
    scenario = by_name("acc-expiry-reload")
    mutation = MUTATIONS["skew-ltime"]
    result = explore(scenario, depth=scenario.total_events,
                     mutation=mutation)
    assert result.failure is not None
    payload = result.failure.to_dict()
    assert payload["violations"][0]["invariant"] == "stale-epoch-use"
    # The schedule labels line up with the choices.
    labels = result.failure.scenario.agent_labels()
    assert payload["schedule"] == [labels[c] for c in payload["choices"]]
