"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


def test_parser_run_defaults():
    args = build_parser().parse_args(["run", "FUSION", "adpcm"])
    assert args.system == "FUSION"
    assert args.size == "full"


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "GPU", "adpcm"])


def test_parser_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "FUSION", "quicksort"])


def test_run_command_prints_summary(capsys):
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "accel cyc" in out
    assert "energy (uJ)" in out


def test_experiment_command_renders_table(capsys):
    assert main(["experiment", "fig6d", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6d" in out
    assert "DMA(kB)" in out


def test_config_command(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "L1X" in out


def test_compare_command(capsys):
    assert main(["compare", "adpcm", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "IDEAL" in out
    assert "efficiency" in out
    assert "legend:" in out


def test_area_command(capsys):
    assert main(["area", "--axcs", "4"]) == 0
    out = capsys.readouterr().out
    assert "l1x" in out
    assert "leakage" in out


def test_trace_command(tmp_path, capsys):
    path = str(tmp_path / "t.trace")
    assert main(["trace", "adpcm", path, "--size", "tiny"]) == 0
    from repro.workloads import trace_io
    workload = trace_io.load_path(path)
    assert workload.benchmark == "adpcm"


def test_multitenant_command(capsys):
    assert main(["multitenant", "adpcm", "filter", "--size",
                 "tiny"]) == 0
    out = capsys.readouterr().out
    assert "adpcm+filter" in out
    assert "PID conflicts" in out


def test_run_json_format(capsys):
    import json
    assert main(["run", "FUSION", "adpcm", "--size", "tiny",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["system"] == "FUSION"


def test_experiment_csv_format(capsys):
    assert main(["experiment", "fig6d", "--size", "tiny",
                 "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("Benchmark,")


def test_parallelism_command(capsys):
    assert main(["parallelism", "disparity", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "overlap speedup" in out


def test_run_with_config_file(tmp_path, capsys):
    path = tmp_path / "cfg.json"
    path.write_text('{"name": "custom", "tile": {"default_lease": 123}}')
    assert main(["run", "FUSION", "adpcm", "--size", "tiny",
                 "--config", str(path)]) == 0
    assert "accel cyc" in capsys.readouterr().out


def test_multitenant_per_tile(capsys):
    assert main(["multitenant", "adpcm", "filter", "--per-tile",
                 "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "tiles            : 2" in out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


@pytest.fixture
def fresh_engine(tmp_path, monkeypatch):
    """Isolate the process-wide engine (and its cache dir) per test."""
    from repro.sim.engine import reset_engine
    from repro.sim.simulator import clear_cache
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()   # drop the in-process result memo too
    reset_engine()
    yield
    clear_cache()
    reset_engine()


def test_parser_accepts_jobs_and_no_cache():
    args = build_parser().parse_args(
        ["--jobs", "4", "--no-cache", "run", "FUSION", "adpcm"])
    assert args.jobs == 4
    assert args.no_cache is True


def test_jobs_and_no_cache_configure_engine(fresh_engine, capsys):
    from repro.sim.engine import get_engine
    assert main(["--jobs", "1", "--no-cache", "run", "FUSION", "adpcm",
                 "--size", "tiny"]) == 0
    engine = get_engine()
    assert engine.jobs == 1
    assert engine.cache.enabled is False
    assert engine.cache.disk_stats() == (0, 0)


def test_cache_stats_command(fresh_engine, capsys):
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries        : 1" in out
    assert "trace entries  : 1" in out
    assert "replay entries : " in out
    assert "last session" in out
    assert "hit ratio" in out


def test_cache_clear_command(fresh_engine, capsys):
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    capsys.readouterr()
    assert main(["cache", "clear"]) == 0
    # 1 result + 1 prepared-trace entry.
    assert "removed 2 cached file(s)" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries        : 0" in out
    assert "trace entries  : 0" in out


def test_profile_command(fresh_engine, capsys):
    assert main(["profile", "FUSION", "fft", "--size", "tiny",
                 "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "FUSION on fft (size=tiny)" in out
    assert "cumulative" in out
    assert "run" in out
    assert "phase breakdown" not in out


def test_profile_phase_breakdown(fresh_engine, capsys):
    assert main(["profile", "FUSION", "tracking", "--size", "tiny",
                 "--phase", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "phase breakdown (tottime):" in out
    for phase in ("lowering", "phases", "vector", "replay", "policy",
                  "protocol", "engine", "other"):
        assert phase in out
    # The simulation hot path spends real time in the protocol and
    # engine layers; the shares are percentages that sum to ~100.
    shares = [float(line.split("%")[0].split()[-1])
              for line in out.splitlines() if "%" in line and "s " in line]
    assert len(shares) == 8
    assert abs(sum(shares) - 100.0) < 0.5


def test_parser_accepts_timeout_and_retries():
    args = build_parser().parse_args(
        ["--timeout", "300", "--retries", "3", "run", "FUSION", "adpcm"])
    assert args.timeout == 300.0
    assert args.retries == 3


def test_timeout_and_retries_configure_engine(fresh_engine, capsys):
    from repro.sim.engine import get_engine
    assert main(["--timeout", "300", "--retries", "3", "config"]) == 0
    engine = get_engine()
    assert engine.timeout == 300.0
    assert engine.retries == 3


def test_doctor_quick(fresh_engine, capsys):
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    capsys.readouterr()
    assert main(["doctor", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "engine configuration" in out
    assert "cache health" in out
    assert "1 simulated" in out          # last session's telemetry
    assert "recovery drills skipped (--quick)" in out


def test_cache_stats_reports_orphaned_temp_files(fresh_engine, capsys):
    from repro.sim.engine import get_engine
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    root = get_engine().cache.root / "v1" / "ab"
    root.mkdir(parents=True, exist_ok=True)
    (root / ".tmp-dead-writer").write_bytes(b"x" * 64)
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "temp files     : 1" in capsys.readouterr().out
    assert main(["cache", "clear"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "temp files     : 0" in capsys.readouterr().out


def test_cache_stats_reports_stale_schema_entries(fresh_engine, capsys):
    import pickle
    from repro.sim.engine import get_engine
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    stale = get_engine().cache.root / "v1" / "aa"
    stale.mkdir(parents=True, exist_ok=True)
    (stale / ("aa" + "0" * 62 + ".pkl")).write_bytes(
        pickle.dumps("old-schema entry"))
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "stale schema   : 1 old-schema entrie(s)" in out
    assert "vector entries :" in out
    assert main(["cache", "clear"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "stale schema" not in capsys.readouterr().out


def test_check_single_scenario(capsys):
    assert main(["check", "--scenario", "acc-two-writers"]) == 0
    out = capsys.readouterr().out
    assert "result: OK" in out


def test_check_json_is_parseable(capsys):
    import json
    assert main(["check", "--scenario", "dx-forward", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"]
    assert report["explorations"][0]["scenario"] == "dx-forward"


def test_check_self_test(capsys):
    import json
    assert main(["check", "--self-test", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"]
    assert all(entry["caught"] for entry in report["mutations"])


def test_check_mutated_run_fails_with_repro(capsys):
    code = main(["check", "--scenario", "acc-two-writers",
                 "--mutate", "drop-write-epoch-lock"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out
    assert "repro: fusion-sim check" in out


def test_check_rejects_unknown_kind():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["check", "--kind", "gpu"])
