"""Command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


def test_parser_run_defaults():
    args = build_parser().parse_args(["run", "FUSION", "adpcm"])
    assert args.system == "FUSION"
    assert args.size == "full"


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "GPU", "adpcm"])


def test_parser_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "FUSION", "quicksort"])


def test_run_command_prints_summary(capsys):
    assert main(["run", "FUSION", "adpcm", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "accel cyc" in out
    assert "energy (uJ)" in out


def test_experiment_command_renders_table(capsys):
    assert main(["experiment", "fig6d", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6d" in out
    assert "DMA(kB)" in out


def test_config_command(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "L1X" in out


def test_compare_command(capsys):
    assert main(["compare", "adpcm", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "IDEAL" in out
    assert "efficiency" in out
    assert "legend:" in out


def test_area_command(capsys):
    assert main(["area", "--axcs", "4"]) == 0
    out = capsys.readouterr().out
    assert "l1x" in out
    assert "leakage" in out


def test_trace_command(tmp_path, capsys):
    path = str(tmp_path / "t.trace")
    assert main(["trace", "adpcm", path, "--size", "tiny"]) == 0
    from repro.workloads import trace_io
    workload = trace_io.load_path(path)
    assert workload.benchmark == "adpcm"


def test_multitenant_command(capsys):
    assert main(["multitenant", "adpcm", "filter", "--size",
                 "tiny"]) == 0
    out = capsys.readouterr().out
    assert "adpcm+filter" in out
    assert "PID conflicts" in out


def test_run_json_format(capsys):
    import json
    assert main(["run", "FUSION", "adpcm", "--size", "tiny",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["system"] == "FUSION"


def test_experiment_csv_format(capsys):
    assert main(["experiment", "fig6d", "--size", "tiny",
                 "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("Benchmark,")


def test_parallelism_command(capsys):
    assert main(["parallelism", "disparity", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "overlap speedup" in out


def test_run_with_config_file(tmp_path, capsys):
    path = tmp_path / "cfg.json"
    path.write_text('{"name": "custom", "tile": {"default_lease": 123}}')
    assert main(["run", "FUSION", "adpcm", "--size", "tiny",
                 "--config", str(path)]) == 0
    assert "accel cyc" in capsys.readouterr().out


def test_multitenant_per_tile(capsys):
    assert main(["multitenant", "adpcm", "filter", "--per-tile",
                 "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "tiles            : 2" in out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
