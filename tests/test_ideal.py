"""The IDEAL upper bound and efficiency analysis (repro.systems.ideal)."""

import pytest

from repro.sim.simulator import run
from repro.workloads.registry import BENCHMARKS


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_ideal_is_a_lower_bound_on_cycles(bench):
    ideal = run("IDEAL", bench, "tiny")
    for system in ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx"):
        real = run(system, bench, "tiny")
        assert ideal.accel_cycles <= real.accel_cycles, system


def test_ideal_charges_only_compute_energy():
    result = run("IDEAL", "adpcm", "tiny")
    assert result.energy["compute"] > 0
    assert result.energy["local"] == 0
    assert result.energy["l1x"] == 0
    assert result.energy["link_axc_l1x_msg"] == 0


def test_fusion_efficiency_beats_scratch_on_fft():
    """Efficiency = IDEAL cycles / system cycles: FUSION delivers more
    of the accelerator's potential than the DMA design on the
    DMA-bound workload."""
    ideal = run("IDEAL", "fft", "small").accel_cycles
    fusion_eff = ideal / run("FUSION", "fft", "small").accel_cycles
    scratch_eff = ideal / run("SCRATCH", "fft", "small").accel_cycles
    assert fusion_eff > scratch_eff


def test_edp_metric():
    fusion = run("FUSION", "fft", "tiny")
    scratch = run("SCRATCH", "fft", "tiny")
    assert fusion.edp == fusion.energy.total_pj * fusion.accel_cycles
    # FUSION wins both axes on FFT, so it must win EDP.
    assert fusion.edp < scratch.edp


def test_link_utilization_reporting():
    shared = run("SHARED", "adpcm", "tiny")
    fusion = run("FUSION", "adpcm", "tiny")
    scratch = run("SCRATCH", "adpcm", "tiny")
    # SHARED pushes every access over the switch: highest occupancy.
    assert shared.link_utilization() > fusion.link_utilization()
    assert scratch.link_utilization() == 0.0
    assert 0.0 < shared.link_utilization() < 8.0
