"""Energy accounting (repro.energy.accounting)."""

import pytest

from repro.energy.accounting import COMPONENTS, EnergyBreakdown, \
    breakdown_from_stats


def test_breakdown_from_flat_counters():
    stats = {
        "l0x.energy_pj": 10.0,
        "l1x.energy_pj": 20.0,
        "l2.energy_pj": 30.0,
        "axc.compute.energy_pj": 5.0,
        "link.axc_l1x.msg_energy_pj": 1.0,
        "link.axc_l1x.data_energy_pj": 2.0,
        "link.l1x_l2.msg_energy_pj": 3.0,
        "link.l1x_l2.data_energy_pj": 4.0,
        "unrelated.counter": 999.0,
    }
    breakdown = breakdown_from_stats(stats)
    assert breakdown["local"] == 10.0
    assert breakdown["l1x"] == 20.0
    assert breakdown["l2"] == 30.0
    assert breakdown["compute"] == 5.0
    assert breakdown["link_axc_l1x_msg"] == 1.0
    assert breakdown["link_l1x_l2"] == 7.0
    assert breakdown.total_pj == pytest.approx(75.0)


def test_scratchpad_counts_as_local():
    breakdown = breakdown_from_stats({"scratchpad.energy_pj": 8.0})
    assert breakdown["local"] == 8.0


def test_nested_counters_are_summed():
    breakdown = breakdown_from_stats({
        "l0x.energy_pj": 4.0,
        "l0x.energy_pj.bank0": 0.0,  # nested form also accepted
    })
    assert breakdown["local"] == 4.0


def test_cache_to_compute_ratio():
    breakdown = EnergyBreakdown({"compute": 10.0, "l1x": 25.0})
    assert breakdown.cache_to_compute_ratio() == pytest.approx(2.5)
    assert breakdown.cache_pj == 25.0


def test_zero_compute_gives_infinite_ratio():
    breakdown = EnergyBreakdown({"l1x": 5.0})
    assert breakdown.cache_to_compute_ratio() == float("inf")


def test_link_total():
    breakdown = EnergyBreakdown({
        "link_axc_l1x_msg": 1.0, "link_fwd": 2.0, "l2": 4.0})
    assert breakdown.link_pj == 3.0


def test_normalized_to_baseline():
    base = EnergyBreakdown({"l2": 50.0, "compute": 50.0})
    other = EnergyBreakdown({"l2": 25.0})
    norm = other.normalized_to(base)
    assert norm["l2"] == pytest.approx(0.25)


def test_normalized_to_zero_baseline_raises():
    with pytest.raises(ZeroDivisionError):
        EnergyBreakdown({"l2": 1.0}).normalized_to(EnergyBreakdown({}))


def test_component_keys_are_known():
    breakdown = breakdown_from_stats({})
    assert set(breakdown.components) == set(COMPONENTS)
