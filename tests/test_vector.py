"""Unit tests for the SoA vector compiler (repro.workloads.vector)."""

import pytest

np = pytest.importorskip("numpy")

from repro.common.stats import StatsRegistry, compile_phase_ledger
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp
from repro.workloads import vector
from repro.workloads.phases import build_phase, phase_plan, \
    single_run_phase
from repro.workloads.vector import KIND_COMPUTE, KIND_LOAD, KIND_STORE, \
    VectorWindow, accumulate, build_window, compile_vector_plan, \
    compile_window_ledger, compiled_vector_count, vector_plan, \
    vector_summary

BASE = 0x10000


def _load(block):
    return MemOp(AccessType.LOAD, BASE + block * 64)


def _store(block):
    return MemOp(AccessType.STORE, BASE + block * 64)


def _trace(ops, lease_time=250):
    return FunctionTrace(name="fn", benchmark="unit", ops=ops,
                         lease_time=lease_time)


def _run_ops(block, is_store, count):
    op = _store(block) if is_store else _load(block)
    return [MemOp(op.kind, op.addr) for _ in range(count)]


# ---------------------------------------------------------------------------
# accumulate: the serial-fold primitive everything else leans on.

def test_accumulate_bit_identical_to_python_fold():
    import random
    rng = random.Random(42)
    for trial in range(50):
        start = rng.uniform(-1e6, 1e6)
        amounts = [rng.uniform(-1e3, 1e3)
                   for _ in range(rng.randrange(1, 64))]
        expected = start
        for amount in amounts:
            expected += amount
        assert repr(accumulate(start, amounts)) == repr(expected)


def test_accumulate_returns_python_float():
    value = accumulate(1.5, [2.5, 3.0])
    assert type(value) is float
    assert value == 7.0


# ---------------------------------------------------------------------------
# VectorWindow: the SoA layout itself.

def _two_phase_window():
    head = build_phase([(_load(0), 0, 3), (None, 4, 1),
                        (_store(1), 1, 2)])
    tail = build_phase([(_load(2), 2, 5)])
    return build_window(((head, None), (tail, None)), start=7)


def test_window_soa_arrays_match_steps():
    window = _two_phase_window()
    assert window.start == 7
    assert window.span == 2
    assert list(window.step_kind) == [KIND_LOAD, KIND_COMPUTE,
                                      KIND_STORE, KIND_LOAD]
    assert list(window.step_block) == [0, -1, 1, 2]
    assert list(window.step_count) == [3, 1, 2, 5]
    assert list(window.step_latency) == [0, 4, 0, 0]
    assert list(window.step_phase) == [0, 0, 0, 1]


def test_window_per_phase_aggregates_are_python_scalars():
    window = _two_phase_window()
    assert window.mem_ops == (5, 5)
    assert window.compute == (4, 0)
    assert window.num_loads == (3, 5)
    assert window.num_stores == (2, 0)
    # Prefix sums index by accepted-phase count; native ints so the
    # core's clock never becomes a numpy scalar.
    assert window.cum_mem_ops == (0, 5, 10)
    assert window.cum_compute == (0, 4, 4)
    assert window.total_loads == 8
    assert window.total_stores == 2
    for value in window.cum_mem_ops + window.cum_compute:
        assert type(value) is int


def test_window_guard_rows_flatten_block_info():
    window = _two_phase_window()
    assert window.rows == ((0, False), (1, True), (2, False))
    assert window.row_blocks == (0, 1, 2)
    assert window.row_phase_ids == (0, 0, 1)
    # row_start[j] slices phase j's rows.
    assert window.row_start == (0, 2, 3)
    assert list(window.row_last_pos) == [3, 5, 5]


def test_window_op_kinds_expand_in_program_order():
    window = _two_phase_window()
    kinds = window.op_kinds()
    assert list(kinds) == [KIND_LOAD] * 3 + [KIND_STORE] * 2 \
        + [KIND_LOAD] * 5
    assert len(kinds) == sum(window.mem_ops)


def test_window_prefix_cycles_closed_form():
    window = _two_phase_window()
    assert window.prefix_cycles(0, 2) == 0
    assert window.prefix_cycles(1, 2) == 5 * 2 + 4
    assert window.prefix_cycles(2, 2) == 10 * 2 + 4


# ---------------------------------------------------------------------------
# compile_vector_plan: windowing over plan entries.

def test_plan_windows_are_maximal_phase_runs():
    ops = (_run_ops(0, False, 6) + _run_ops(1, False, 6)
           + [ComputeOp(int_ops=200)]          # phase-breaking step
           + _run_ops(2, True, 6))
    plan = phase_plan(_trace(ops), issue_width=4, leased=True)
    vplan = compile_vector_plan(plan)
    # Only runs of >= MIN_WINDOW_PHASES consecutive phases compile.
    for window in vplan.windows:
        assert window.span >= vector.MIN_WINDOW_PHASES
        assert vplan.window_at[window.start] is window
    assert vplan.num_phases == sum(w.span for w in vplan.windows)


def test_single_phase_runs_get_no_window():
    plan = phase_plan(_trace(_run_ops(0, False, 8)), issue_width=4,
                      leased=True)
    phase_entries = [e for e in plan.entries if e[0] is not None]
    if len(phase_entries) < vector.MIN_WINDOW_PHASES:
        assert compile_vector_plan(plan).windows == ()


def test_vector_plan_memoised_and_shared_when_unleased():
    trace = _trace(_run_ops(0, False, 8) + _run_ops(1, True, 8),
                   lease_time=None)
    assert compiled_vector_count(trace) == 0
    leased = vector_plan(trace, 4, leased=True)
    unleased = vector_plan(trace, 4, leased=False)
    assert vector_plan(trace, 4, leased=True) is leased
    # No lease time -> both variants share one PhasePlan, so the
    # compiled vector plan is shared too.
    assert unleased is leased
    assert compiled_vector_count(trace) == 2
    entries, windows = vector_summary(trace)
    assert entries == 2
    assert windows == len(leased.windows)   # shared plan tallied once


def test_vector_plan_distinct_when_leased():
    trace = _trace(_run_ops(0, False, 12) + _run_ops(1, True, 12),
                   lease_time=30)
    leased = vector_plan(trace, 4, leased=True)
    unleased = vector_plan(trace, 4, leased=False)
    source_leased = phase_plan(trace, 4, True)
    source_unleased = phase_plan(trace, 4, False)
    if source_leased is not source_unleased:
        assert leased is not unleased


# ---------------------------------------------------------------------------
# compile_window_ledger: the whole-window bulk counter apply.

LOAD_PAIRS = (("l0x.read_hits", 1), ("l0x.energy_pj", 0.7),
              ("link.msg_energy_pj", 0.3))
STORE_PAIRS = (("l0x.write_hits", 1), ("l0x.energy_pj", 1.1),
               ("link.msg_energy_pj", 0.3))


def _per_phase_reference(window):
    """Flush every phase's sequence ledger in order (the per-phase
    rung's exact behaviour) and return the snapshot."""
    registry = StatsRegistry()
    for phase in window.phases:
        program = compile_phase_ledger(LOAD_PAIRS, STORE_PAIRS,
                                       phase.num_loads, phase.num_stores)
        registry.phase_flusher(phase.event_seq, program)()
    return registry.snapshot()


def test_window_ledger_bit_identical_to_per_phase_ledgers():
    window = _two_phase_window()
    program = compile_window_ledger(LOAD_PAIRS, STORE_PAIRS, window)
    registry = StatsRegistry()
    registry.window_flusher(program)()
    bulk = registry.snapshot()
    reference = _per_phase_reference(window)
    assert sorted(bulk) == sorted(reference)
    for name in reference:
        assert repr(bulk[name]) == repr(reference[name]), name


def test_window_ledger_loads_only():
    window = build_window(((single_run_phase(_load(0), 4), None),
                           (single_run_phase(_load(1), 3), None)))
    program = compile_window_ledger(LOAD_PAIRS, STORE_PAIRS, window)
    registry = StatsRegistry()
    registry.window_flusher(program)()
    snapshot = registry.snapshot()
    assert snapshot["l0x.read_hits"] == 7
    assert "l0x.write_hits" not in snapshot
    reference = _per_phase_reference(window)
    for name in reference:
        assert repr(snapshot[name]) == repr(reference[name]), name


def test_window_ledger_multi_amount_energy_counters():
    # Two increments of the same _pj counter per op: the fold must
    # replay both amounts per op in program order.
    load_pairs = (("l0x.energy_pj", 0.7), ("l0x.energy_pj", 0.05))
    store_pairs = (("l0x.energy_pj", 1.1), ("l0x.energy_pj", 0.05))
    window = _two_phase_window()
    program = compile_window_ledger(load_pairs, store_pairs, window)
    registry = StatsRegistry()
    registry.window_flusher(program)()
    reference = StatsRegistry()
    for phase in window.phases:
        prog = compile_phase_ledger(load_pairs, store_pairs,
                                    phase.num_loads, phase.num_stores)
        reference.phase_flusher(phase.event_seq, prog)()
    assert repr(registry.snapshot()["l0x.energy_pj"]) \
        == repr(reference.snapshot()["l0x.energy_pj"])


def test_window_ledger_starts_from_nonzero_running_value():
    # Energy folds depend on the running value; seed both registries
    # with an awkward float and demand identical rounding.
    window = _two_phase_window()
    program = compile_window_ledger(LOAD_PAIRS, STORE_PAIRS, window)
    registry = StatsRegistry()
    registry.add("l0x.energy_pj", 1234.5678901)
    registry.window_flusher(program)()
    reference = StatsRegistry()
    reference.add("l0x.energy_pj", 1234.5678901)
    for phase in window.phases:
        prog = compile_phase_ledger(LOAD_PAIRS, STORE_PAIRS,
                                    phase.num_loads, phase.num_stores)
        reference.phase_flusher(phase.event_seq, prog)()
    assert repr(registry.snapshot()["l0x.energy_pj"]) \
        == repr(reference.snapshot()["l0x.energy_pj"])


# ---------------------------------------------------------------------------
# Memoisation plumbing.

def test_invalidate_lowered_evicts_vector_plans():
    from repro.workloads.lowering import invalidate_lowered
    trace = _trace(_run_ops(0, False, 8) + _run_ops(1, True, 8))
    vector_plan(trace, 4, leased=True)
    assert compiled_vector_count(trace) == 1
    invalidate_lowered(trace)
    assert compiled_vector_count(trace) == 0
    assert vector_summary(trace) == (0, 0)


def test_vector_plan_none_when_numpy_missing(monkeypatch):
    monkeypatch.setattr(vector, "np", None)
    trace = _trace(_run_ops(0, False, 8))
    assert vector_plan(trace, 4, leased=True) is None
