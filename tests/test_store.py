"""The durable experiment store and serializable job specs
(repro.sim.store, repro.sim.jobs)."""

import json
import threading
import time

import pytest

from repro.common.errors import ConfigError
from repro.sim import jobs as jobs_mod
from repro.sim.engine import RunRequest
from repro.sim.store import ExperimentStore, default_owner, owner_pid_alive
from repro.sim.sweep import grid_points, lease_axis

SPEC = {"systems": ["FUSION", "SHARED"], "benchmarks": ["adpcm"],
        "size": "tiny", "axes": [{"kind": "lease",
                                  "values": [100, 500]}]}


@pytest.fixture
def store(tmp_path):
    store = ExperimentStore(tmp_path / "store.db")
    yield store
    store.close()


# -- job specs -------------------------------------------------------------

def test_normalize_spec_canonicalises():
    spec = jobs_mod.normalize_spec(SPEC)
    assert spec["axes"] == [{"kind": "lease", "values": ["100", "500"]}]
    assert spec["metrics"] == list(jobs_mod.DEFAULT_METRICS)


@pytest.mark.parametrize("broken", [
    {},
    {"systems": ["NOPE"], "benchmarks": ["adpcm"]},
    {"systems": ["FUSION"], "benchmarks": ["nope"]},
    {"systems": ["FUSION"], "benchmarks": ["adpcm"], "size": "huge"},
    {"systems": ["FUSION"], "benchmarks": ["adpcm"],
     "axes": [{"kind": "voltage", "values": [1]}]},
    {"systems": ["FUSION"], "benchmarks": ["adpcm"],
     "axes": [{"kind": "lease", "values": []}]},
    {"systems": ["FUSION"], "benchmarks": ["adpcm"],
     "metrics": ["nope"]},
])
def test_normalize_spec_rejects(broken):
    with pytest.raises(ConfigError):
        jobs_mod.normalize_spec(broken)


def test_spec_expands_to_sweep_grid():
    """A spec expands to the exact requests a direct sweep would run."""
    _points, direct = grid_points(["FUSION", "SHARED"], ["adpcm"],
                                  [lease_axis(100, 500)], "tiny")
    entries = list(jobs_mod.spec_points(SPEC))
    assert [request for _k, _p, request in entries] == direct


def test_point_request_round_trip():
    for key, point, request in jobs_mod.spec_points(SPEC):
        assert jobs_mod.point_request(point) == request
        # key is a pure content hash of the point JSON
        assert key == jobs_mod.run_key(json.loads(
            json.dumps(point)))


def test_run_key_distinguishes_points():
    entries = list(jobs_mod.spec_points(SPEC))
    assert len({key for key, _p, _r in entries}) == len(entries)


# -- store lifecycle -------------------------------------------------------

def test_submit_creates_pending_rows(store):
    job_id, new_rows = store.submit(SPEC)
    assert new_rows == 4
    counts = store.job_status(job_id)
    assert counts["pending"] == 4 and counts["total"] == 4
    assert store.job_spec(job_id)["systems"] == ["FUSION", "SHARED"]


def test_overlapping_submission_shares_rows(store):
    store.submit(SPEC)
    overlapping = dict(SPEC, systems=["SHARED", "SCRATCH"])
    _job2, new_rows = store.submit(overlapping)
    # SHARED x adpcm x {100,500} already exist; only SCRATCH rows are new.
    assert new_rows == 2
    assert sum(store.counts().values()) == 6


def test_claim_is_compare_and_swap(store):
    store.submit(SPEC)
    a = store.claim("ownerA", limit=10)
    b = store.claim("ownerB", limit=10)
    assert len(a) == 4 and b == []


def test_claim_concurrent_owners_never_share_a_row(store):
    store.submit(SPEC)
    claims = {}

    def worker(owner):
        claims[owner] = store.claim(owner, limit=2)

    threads = [threading.Thread(target=worker, args=("o%d" % i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    keys = [key for got in claims.values() for key, _point in got]
    assert len(keys) == len(set(keys)) == 4


def test_expired_lease_is_reclaimable(store):
    store.submit(SPEC)
    claimed = store.claim("dead", limit=1, lease_s=0.01)
    assert len(claimed) == 1
    time.sleep(0.05)
    stolen = store.claim("alive", limit=10)
    stolen_keys = {key for key, _point in stolen}
    assert claimed[0][0] in stolen_keys
    # the attempt counter shows both claims on the stolen row
    job_id, _ = store.submit(SPEC)
    attempts = {row["key"]: row["attempts"]
                for row in store.job_rows(job_id)}
    assert attempts[claimed[0][0]] == 2


def test_complete_and_fail_columns(store):
    job_id, _ = store.submit(SPEC)
    (key, _point), *rest = store.claim(default_owner(), limit=10)
    store.complete(key, {"fake": "result"}, "codefp", "cfgfp")
    (key2, _), *_ = rest
    store.fail(key2, "ZeroDivisionError('boom')", "codefp")
    rows = {row["key"]: row for row in store.job_rows(job_id)}
    done = rows[key]
    assert done["status"] == "done"
    assert done["code_fingerprint"] == "codefp"
    assert done["config_fingerprint"] == "cfgfp"
    assert done["error"] is None
    failed = rows[key2]
    assert failed["status"] == "failed"
    assert "ZeroDivision" in failed["error"]
    assert failed["attempts"] == 1
    results = {pos: (status, result, error) for pos, _p, status,
               result, error in store.job_results(job_id)}
    assert ("done", {"fake": "result"}, None) in results.values()


def test_release_and_dead_owner_recovery(store):
    store.submit(SPEC)
    # A dead local pid's claims are recoverable without waiting for
    # the lease to expire (the kill -9 resume path).
    dead_owner = "{}:{}:{}".format(__import__("socket").gethostname(),
                                   99999999, "deadbeef")
    assert owner_pid_alive(dead_owner) is False
    claimed = store.claim(dead_owner, limit=2, lease_s=3600)
    assert len(claimed) == 2
    released = store.recover_dead_owners()
    assert released == 2
    assert store.counts()["pending"] == 4
    # Foreign-host owners are left alone (liveness unknowable).
    foreign = store.claim("otherhost:1:abc", limit=1, lease_s=3600)
    assert len(foreign) == 1
    assert store.recover_dead_owners() == 0


def test_persistence_across_reopen(tmp_path):
    store = ExperimentStore(tmp_path / "store.db")
    job_id, _ = store.submit(SPEC)
    (key, _point), *_ = store.claim("owner", limit=1)
    store.complete(key, RunRequest("FUSION", "adpcm", "tiny"), "fp")
    store.close()
    reopened = ExperimentStore(tmp_path / "store.db")
    counts = reopened.job_status(job_id)
    assert counts["done"] == 1 and counts["total"] == 4
    results = [r for _pos, _p, status, r, _e in
               reopened.job_results(job_id) if status == "done"]
    assert results == [RunRequest("FUSION", "adpcm", "tiny")]
    reopened.close()


def test_events_journal_bridge(store):
    store.record_event("engine", "pool_respawn", round=1, owner="x")
    store.record_event("service", "started")
    tail = store.events_tail(5)
    assert [event["event"] for event in tail][-2:] == [
        "pool_respawn", "started"]
    assert json.loads(tail[-2]["detail"])["round"] == 1


def test_unknown_job_raises(store):
    with pytest.raises(KeyError):
        store.job_status("nope")
    with pytest.raises(KeyError):
        store.job_results("nope")
