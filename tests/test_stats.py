"""Statistics registry (repro.common.stats)."""

from repro.common.stats import StatsRegistry


def test_add_and_get():
    stats = StatsRegistry()
    stats.add("a.b", 2)
    stats.add("a.b")
    assert stats.get("a.b") == 3
    assert stats.get("missing") == 0
    assert stats.get("missing", 7) == 7


def test_set_overwrites():
    stats = StatsRegistry()
    stats.add("gauge", 5)
    stats.set("gauge", 1)
    assert stats.get("gauge") == 1


def test_scope_prefixes_names():
    stats = StatsRegistry()
    scope = stats.scope("l1x")
    scope.add("hits")
    assert stats.get("l1x.hits") == 1
    nested = scope.scope("bank0")
    nested.add("conflicts", 4)
    assert stats.get("l1x.bank0.conflicts") == 4
    assert nested.get("conflicts") == 4


def test_snapshot_is_independent_copy():
    stats = StatsRegistry()
    stats.add("x", 1)
    snap = stats.snapshot()
    stats.add("x", 1)
    assert snap["x"] == 1
    assert stats.get("x") == 2


def test_diff_reports_only_changes():
    stats = StatsRegistry()
    stats.add("a", 1)
    stats.add("b", 1)
    snap = stats.snapshot()
    stats.add("a", 4)
    stats.add("c", 2)
    delta = stats.diff(snap)
    assert delta == {"a": 4, "c": 2}


def test_merge_accumulates():
    a = StatsRegistry()
    b = StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a.get("x") == 3
    assert a.get("y") == 3
    a.merge({"x": 1})
    assert a.get("x") == 4


def test_total_sums_prefix():
    stats = StatsRegistry()
    stats.add("link.a.bytes", 10)
    stats.add("link.b.bytes", 5)
    stats.add("linkother", 99)
    assert stats.total("link") == 15


def test_subtree_strips_prefix():
    stats = StatsRegistry()
    stats.add("l0x.hits", 1)
    stats.add("l0x.misses", 2)
    stats.add("l1x.hits", 9)
    assert stats.subtree("l0x") == {"hits": 1, "misses": 2}


def test_names_sorted_and_contains():
    stats = StatsRegistry()
    stats.add("b")
    stats.add("a")
    assert stats.names() == ["a", "b"]
    assert "a" in stats
    assert "z" not in stats


def test_clear():
    stats = StatsRegistry()
    stats.add("a")
    stats.clear()
    assert stats.names() == []
