"""Statistics registry (repro.common.stats)."""

from repro.common.stats import StatsRegistry


def test_add_and_get():
    stats = StatsRegistry()
    stats.add("a.b", 2)
    stats.add("a.b")
    assert stats.get("a.b") == 3
    assert stats.get("missing") == 0
    assert stats.get("missing", 7) == 7


def test_set_overwrites():
    stats = StatsRegistry()
    stats.add("gauge", 5)
    stats.set("gauge", 1)
    assert stats.get("gauge") == 1


def test_scope_prefixes_names():
    stats = StatsRegistry()
    scope = stats.scope("l1x")
    scope.add("hits")
    assert stats.get("l1x.hits") == 1
    nested = scope.scope("bank0")
    nested.add("conflicts", 4)
    assert stats.get("l1x.bank0.conflicts") == 4
    assert nested.get("conflicts") == 4


def test_snapshot_is_independent_copy():
    stats = StatsRegistry()
    stats.add("x", 1)
    snap = stats.snapshot()
    stats.add("x", 1)
    assert snap["x"] == 1
    assert stats.get("x") == 2


def test_diff_reports_only_changes():
    stats = StatsRegistry()
    stats.add("a", 1)
    stats.add("b", 1)
    snap = stats.snapshot()
    stats.add("a", 4)
    stats.add("c", 2)
    delta = stats.diff(snap)
    assert delta == {"a": 4, "c": 2}


def test_merge_accumulates():
    a = StatsRegistry()
    b = StatsRegistry()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a.get("x") == 3
    assert a.get("y") == 3
    a.merge({"x": 1})
    assert a.get("x") == 4


def test_total_sums_prefix():
    stats = StatsRegistry()
    stats.add("link.a.bytes", 10)
    stats.add("link.b.bytes", 5)
    stats.add("linkother", 99)
    assert stats.total("link") == 15


def test_total_counts_exact_name_once_and_ignores_lookalikes():
    """Regression: ``total("l1x")`` must count a counter named exactly
    ``l1x`` exactly once, and must never match ``l1x_other.x`` (a name
    that shares the prefix string but not the dotted hierarchy)."""
    stats = StatsRegistry()
    stats.add("l1x", 7)              # exact name, no dot
    stats.add("l1x.hits", 3)         # true child
    stats.add("l1x_other.x", 100)    # lookalike prefix — must not count
    stats.add("l1xtra", 50)          # lookalike leaf — must not count
    assert stats.total("l1x") == 10
    # A trailing dot means the same subtree.
    assert stats.total("l1x.") == 10


def test_counter_handle_binds_name_and_accumulates():
    stats = StatsRegistry()
    add_hits = stats.counter("l0x.hits")
    assert add_hits.counter_name == "l0x.hits"
    # Creating a handle must NOT materialise the counter (key sets feed
    # the golden digests).
    assert "l0x.hits" not in stats
    add_hits()
    add_hits(2)
    assert stats.get("l0x.hits") == 3


def test_scope_counter_qualifies_and_survives_clear():
    stats = StatsRegistry()
    scope = stats.scope("tile").scope("axc0")
    add = scope.counter("mem_ops")
    add(5)
    assert stats.get("tile.axc0.mem_ops") == 5
    # clear() empties in place, so live handles keep working.
    stats.clear()
    assert stats.get("tile.axc0.mem_ops") == 0
    add(2)
    assert stats.get("tile.axc0.mem_ops") == 2


def test_subtree_strips_prefix():
    stats = StatsRegistry()
    stats.add("l0x.hits", 1)
    stats.add("l0x.misses", 2)
    stats.add("l1x.hits", 9)
    assert stats.subtree("l0x") == {"hits": 1, "misses": 2}


def test_names_sorted_and_contains():
    stats = StatsRegistry()
    stats.add("b")
    stats.add("a")
    assert stats.names() == ["a", "b"]
    assert "a" in stats
    assert "z" not in stats


def test_clear():
    stats = StatsRegistry()
    stats.add("a")
    stats.clear()
    assert stats.names() == []
