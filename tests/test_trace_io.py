"""Trace persistence (repro.workloads.trace_io)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceError
from repro.common.types import (
    AccessType,
    ComputeOp,
    FunctionTrace,
    MemOp,
    PhaseMarker,
    WorkloadTrace,
)
from repro.workloads import trace_io


def roundtrip(workload):
    buffer = io.StringIO()
    trace_io.dump(workload, buffer)
    buffer.seek(0)
    return trace_io.load(buffer)


def test_roundtrip_real_benchmark(adpcm_tiny):
    back = roundtrip(adpcm_tiny)
    assert back.benchmark == adpcm_tiny.benchmark
    assert back.host_input_arrays == adpcm_tiny.host_input_arrays
    assert back.host_output_arrays == adpcm_tiny.host_output_arrays
    assert back.array_ranges == adpcm_tiny.array_ranges
    assert len(back.invocations) == len(adpcm_tiny.invocations)
    for original, restored in zip(adpcm_tiny.invocations,
                                  back.invocations):
        assert restored.name == original.name
        assert restored.lease_time == original.lease_time
        assert restored.ops == original.ops


def test_roundtrip_via_files(tmp_path, fft_tiny):
    path = tmp_path / "fft.trace"
    trace_io.save_path(fft_tiny, path)
    back = trace_io.load_path(path)
    assert back.working_set_blocks() == fft_tiny.working_set_blocks()


def test_loaded_trace_simulates_identically(tmp_path, adpcm_tiny):
    from repro.common.config import small_config
    from repro.systems import FusionSystem
    path = tmp_path / "adpcm.trace"
    trace_io.save_path(adpcm_tiny, path)
    restored = trace_io.load_path(path)
    original = FusionSystem(small_config(), adpcm_tiny).run()
    replayed = FusionSystem(small_config(), restored).run()
    # Bit-identical, not just approximately equal: the replayed run must
    # reproduce every counter of the original (the restored trace goes
    # through the same lowering pass, so any drift here means trace
    # serialisation or lowering lost information).
    assert replayed.accel_cycles == original.accel_cycles
    assert replayed.total_cycles == original.total_cycles
    assert replayed.energy.total_pj == original.energy.total_pj
    assert replayed.stats == original.stats


def test_dump_unaffected_by_attached_hot_path_memos(fft_tiny):
    """Lowered streams, MLP tables and DMA windows are memoised on the
    trace objects; none of that may leak into the serialised format."""
    from repro.host.dma import windows_for
    from repro.workloads.characterize import function_mlp
    from repro.workloads.lowering import lower_workload

    before = io.StringIO()
    trace_io.dump(fft_tiny, before)
    lower_workload(fft_tiny)
    function_mlp(fft_tiny)
    windows_for(fft_tiny.invocations[0], 4)
    after = io.StringIO()
    trace_io.dump(fft_tiny, after)
    assert after.getvalue() == before.getvalue()


def test_empty_file_rejected():
    with pytest.raises(TraceError):
        trace_io.load(io.StringIO(""))


def test_wrong_version_rejected():
    with pytest.raises(TraceError):
        trace_io.load(io.StringIO('{"version": 99}\n'))


def test_op_before_function_rejected():
    content = ('{"version": 1, "benchmark": "b", "host_inputs": [], '
               '"host_outputs": [], "arrays": {}}\n["L", 0, 4, "a"]\n')
    with pytest.raises(TraceError):
        trace_io.load(io.StringIO(content))


ops = st.lists(st.one_of(
    st.builds(MemOp,
              kind=st.sampled_from(list(AccessType)),
              addr=st.integers(0, 1 << 30),
              size=st.integers(1, 8),
              array=st.text("ab_", max_size=6)),
    st.builds(ComputeOp, int_ops=st.integers(0, 100),
              fp_ops=st.integers(0, 100)),
    st.builds(PhaseMarker, label=st.text("xyz", max_size=4)),
), max_size=40)


@given(st.lists(st.tuples(st.text("fg", min_size=1, max_size=5),
                          st.integers(1, 5000), ops), max_size=5))
@settings(max_examples=50)
def test_roundtrip_property(functions):
    workload = WorkloadTrace(benchmark="prop", invocations=[
        FunctionTrace(name=name, benchmark="prop", lease_time=lease,
                      ops=list(trace_ops))
        for name, lease, trace_ops in functions
    ])
    back = roundtrip(workload)
    assert [t.name for t in back.invocations] == \
        [t.name for t in workload.invocations]
    assert [t.ops for t in back.invocations] == \
        [t.ops for t in workload.invocations]
