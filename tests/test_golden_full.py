"""Full-RunResult golden-stability gate for the hot-path lowering layer.

``test_golden.py`` locks each system's headline numbers; this gate goes
further and pins the *entire* tiny-size :class:`RunResult` — every stats
counter (ints and floats, bit-for-bit via ``repr``), both cycle counts
and the total energy — for the four evaluated systems.  The baseline was
generated from the legacy per-op interpreter, so a pass here is the
proof that trace lowering (:mod:`repro.workloads.lowering`) is
semantics-preserving: the compiled hot path may only change *how fast*
the answer is computed, never the answer.

To regenerate after an intentional model change:

    python -c "import tests.test_golden_full as g; g.regenerate()"
"""

import hashlib
import json
import pathlib

import pytest

import repro

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_tiny_full.json"

#: The four systems the paper evaluates (Figure 6 + Table 5).
SYSTEMS = ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx")


def _stats_digest(stats):
    """Bit-exact content hash of a stats snapshot.

    ``repr`` round-trips floats exactly on CPython, so two snapshots
    digest identically iff every counter matches to the last bit.
    """
    canonical = json.dumps(
        sorted((name, repr(value)) for name, value in stats.items()))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def current(system, bench):
    result = repro.run(system, bench, "tiny")
    return {
        "accel_cycles": result.accel_cycles,
        "total_cycles": result.total_cycles,
        "energy_pj": repr(result.energy.total_pj),
        "num_counters": len(result.stats),
        "stats_sha256": _stats_digest(result.stats),
    }


def load_golden():
    with open(GOLDEN_PATH) as fileobj:
        return json.load(fileobj)


def regenerate():
    golden = {}
    for bench in repro.BENCHMARKS:
        for system in SYSTEMS:
            golden["{}:{}".format(system, bench)] = current(system, bench)
    with open(GOLDEN_PATH, "w") as fileobj:
        json.dump(golden, fileobj, indent=1, sort_keys=True)
        fileobj.write("\n")


def test_golden_full_file_is_complete():
    assert len(load_golden()) == len(SYSTEMS) * len(repro.BENCHMARKS)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("bench", repro.BENCHMARKS)
def test_full_result_matches_golden(system, bench):
    golden = load_golden()["{}:{}".format(system, bench)]
    measured = current(system, bench)
    assert measured == golden, (
        "full RunResult drifted from the pre-lowering baseline; the "
        "lowered hot path must be bit-identical to the legacy "
        "interpreter (regenerate only for intentional model changes)")
