"""Property-based tests: stats registry, DDG, allocator, MESI directory."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.ddg import analyze, build_ddg
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp
from repro.workloads.builder import AddressSpace

names = st.text(alphabet="abc.", min_size=1, max_size=8)
amounts = st.integers(min_value=-1000, max_value=1000)


@given(st.lists(st.tuples(names, amounts), max_size=60))
@settings(max_examples=100)
def test_stats_diff_of_snapshot_reconstructs_changes(entries):
    stats = StatsRegistry()
    mid = len(entries) // 2
    for name, amount in entries[:mid]:
        stats.add(name, amount)
    snapshot = stats.snapshot()
    expected = {}
    for name, amount in entries[mid:]:
        stats.add(name, amount)
        expected[name] = expected.get(name, 0) + amount
    delta = stats.diff(snapshot)
    for name, amount in expected.items():
        assert delta.get(name, 0) == amount


@given(st.lists(st.tuples(names, amounts), max_size=40),
       st.lists(st.tuples(names, amounts), max_size=40))
@settings(max_examples=100)
def test_stats_merge_is_addition(left, right):
    a = StatsRegistry()
    b = StatsRegistry()
    for name, amount in left:
        a.add(name, amount)
    for name, amount in right:
        b.add(name, amount)
    merged = StatsRegistry()
    merged.merge(a)
    merged.merge(b)
    for name in set(merged.names()):
        assert merged.get(name) == a.get(name) + b.get(name)


mem_op = st.builds(MemOp,
                   kind=st.sampled_from(list(AccessType)),
                   addr=st.integers(0, 4096))
ops = st.lists(st.one_of(
    mem_op, st.builds(ComputeOp, int_ops=st.integers(0, 9),
                      fp_ops=st.integers(0, 9))), max_size=80)


@given(ops)
@settings(max_examples=100)
def test_ddg_levels_respect_dependencies(trace_ops):
    nodes = build_ddg(FunctionTrace(name="f", benchmark="b",
                                    ops=trace_ops))
    for node in nodes:
        for dep in node.deps:
            assert node.level > dep.level
            assert dep.index < node.index


@given(ops)
@settings(max_examples=100)
def test_ddg_mix_always_sums_to_100_or_zero(trace_ops):
    metrics = analyze(FunctionTrace(name="f", benchmark="b",
                                    ops=trace_ops))
    total = sum(metrics.mix_percent())
    assert total == 0.0 or abs(total - 100.0) < 1e-9
    assert metrics.mlp >= 0.0
    assert 1.0 <= metrics.pipe_mlp <= 8.0


@given(st.lists(st.tuples(st.integers(1, 500), st.integers(1, 8)),
                min_size=1, max_size=20))
@settings(max_examples=100)
def test_allocator_ranges_never_overlap(allocations):
    space = AddressSpace()
    arrays = []
    for index, (length, elem_size) in enumerate(allocations):
        arrays.append(space.alloc("a{}".format(index), length, elem_size))
    spans = sorted((a.base, a.base + a.size_bytes) for a in arrays)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start
    for array in arrays:
        assert array.base % 64 == 0  # line aligned


@given(st.lists(st.tuples(st.sampled_from(["host", "tile"]),
                          st.booleans(),
                          st.integers(0, 15).map(lambda i: i * 64)),
                max_size=60))
@settings(max_examples=60, deadline=None)
def test_mesi_directory_owner_is_exclusive(accesses):
    from conftest import RecordingTileAgent, make_mem_system
    mem, _ = make_mem_system()
    mem.tile_agent = RecordingTileAgent()
    for agent, is_store, block in accesses:
        if agent == "host":
            if is_store:
                mem.host_store(block)
            else:
                mem.host_load(block)
        else:
            if not mem.directory.entry(block).cached_by("tile"):
                mem.fetch_for_tile(block)
            elif is_store:
                mem.tile_writeback(block, dirty=True)
        entry = mem.directory.lookup(block)
        if entry is not None and entry.owner is not None:
            others = (entry.sharers - {entry.owner})
            assert not others, "owner must be the only sharer"
        # The host L1 copy is always tracked by the directory.
        if mem.l1.contains(block):
            assert entry is not None and entry.cached_by("host")
