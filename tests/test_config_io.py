"""Config persistence (repro.common.config_io)."""

import pytest

from repro.common.config import ConfigError, WritePolicy, large_config, \
    small_config
from repro.common.config_io import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    save_config,
)


def test_full_roundtrip_via_dict():
    config = large_config()
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config


def test_full_roundtrip_via_file(tmp_path):
    path = tmp_path / "config.json"
    save_config(large_config(), path)
    assert load_config(path) == large_config()


def test_partial_override_keeps_defaults():
    config = config_from_dict({"tile": {"default_lease": 999}})
    assert config.tile.default_lease == 999
    assert config.tile.l1x == small_config().tile.l1x


def test_nested_cache_override():
    config = config_from_dict({"tile": {"l0x": {"size_bytes": 8192}}})
    assert config.tile.l0x.size_bytes == 8192
    assert config.tile.l0x.ways == small_config().tile.l0x.ways


def test_write_policy_as_string():
    config = config_from_dict(
        {"tile": {"l0x": {"write_policy": "WRITE_THROUGH"}}})
    assert config.tile.l0x.write_policy is WritePolicy.WRITE_THROUGH


def test_bad_write_policy_rejected():
    with pytest.raises(ConfigError):
        config_from_dict({"tile": {"l0x": {"write_policy": "MAYBE"}}})


def test_unknown_field_rejected_with_path():
    with pytest.raises(ConfigError, match="tile.l0x.colour"):
        config_from_dict({"tile": {"l0x": {"colour": "red"}}})


def test_geometry_validation_still_applies():
    with pytest.raises(ConfigError):
        config_from_dict({"tile": {"l0x": {"size_bytes": 3000}}})


def test_invalid_json_rejected():
    with pytest.raises(ConfigError):
        config_from_json("{not json")


def test_non_object_rejected():
    with pytest.raises(ConfigError):
        config_from_dict({"tile": 7})


def test_loaded_config_is_hashable_and_runnable():
    config = config_from_dict({"name": "custom",
                               "tile": {"default_lease": 250}})
    from repro.sim.simulator import run
    result = run("FUSION", "adpcm", "tiny", config)
    assert result.config_name == "custom"
