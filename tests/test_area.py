"""Tile area and leakage model (repro.energy.area)."""

import pytest

from repro.common.config import large_config, small_config
from repro.energy.area import (
    area_table,
    static_energy_pj,
    tile_area,
)


def test_fusion_tile_components():
    report = tile_area(small_config(), num_axcs=4)
    assert set(report.components) == {"datapaths", "l0x", "l1x",
                                      "ax_tlb", "ax_rmap"}
    assert report.total_mm2 > 0


def test_scratch_tile_components():
    report = tile_area(small_config(), num_axcs=4, with_scratchpads=True)
    assert "scratchpads" in report.components
    assert "l1x" not in report.components


def test_l1x_dominates_fusion_tile_sram():
    report = tile_area(small_config(), num_axcs=4)
    assert report.components["l1x"] > report.components["l0x"]


def test_large_config_grows_area():
    small = tile_area(small_config(), 4).total_mm2
    large = tile_area(large_config(), 4).total_mm2
    assert large > small * 2


def test_area_scales_with_axc_count():
    two = tile_area(small_config(), 2)
    six = tile_area(small_config(), 6)
    assert six.components["l0x"] == pytest.approx(
        3 * two.components["l0x"])
    assert six.components["l1x"] == two.components["l1x"]  # shared


def test_wire_length_positive_and_sublinear():
    report = tile_area(small_config(), 4)
    assert report.wire_length_mm() > 0
    # sqrt form: doubling every area grows wire length by sqrt(2).
    doubled = tile_area(small_config(), 8)
    assert doubled.wire_length_mm() < 2 * report.wire_length_mm()


def test_leakage_energy_accumulates_with_cycles():
    config = small_config()
    one = static_energy_pj(config, 4, cycles=1000)
    ten = static_energy_pj(config, 4, cycles=10000)
    assert ten == pytest.approx(10 * one)
    assert one > 0


def test_area_table_has_totals():
    rows = area_table(small_config(), 4)
    totals = [(system, value) for system, name, value in rows
              if name == "TOTAL"]
    assert len(totals) == 2
    fusion_total = dict(totals)["FUSION"]
    scratch_total = dict(totals)["SCRATCH"]
    # FUSION trades area (the shared L1X) for the energy wins.
    assert fusion_total > scratch_total
