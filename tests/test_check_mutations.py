"""Mutation self-test (repro.check.mutations) and seed-replay."""

from repro.check import MUTATIONS, execute_schedule, explore, random_walks
from repro.check.mutations import self_test
from repro.check.runner import run_check
from repro.check.scenarios import catalog


def test_every_mutation_is_caught():
    report = self_test()
    assert report["ok"]
    assert len(report["mutations"]) >= 6   # the issue's floor
    for entry in report["mutations"]:
        assert entry["caught"], entry["mutation"]
        assert entry["invariant"] in entry["expected"]


def test_mutation_names_are_distinct_and_described():
    assert len(MUTATIONS) >= 6
    for mutation in MUTATIONS.values():
        assert mutation.description
        assert mutation.expected
        assert set(mutation.kinds) <= {"acc", "shared", "dx"}


def test_correct_protocol_passes_what_mutations_fail():
    """The scenarios that catch each mutation are clean without it —
    the self-test's signal comes from the mutation, not the scenario."""
    for mutation in MUTATIONS.values():
        for scenario in catalog(mutation.kinds):
            result = explore(scenario, depth=scenario.total_events)
            assert result.ok, (mutation.name, scenario.name)
        break   # one mutation's kinds cover the whole catalog claim


def test_run_check_with_mutation_reports_repro_command():
    report = run_check(depth=6, seed=0, schedules=5,
                       mutation_name="skew-ltime", with_litmus=False,
                       randoms=0)
    assert not report["ok"]
    assert report["failures"]
    entry = report["failures"][0]
    assert "--mutate skew-ltime" in entry["repro"]
    assert "--seed 0" in entry["repro"]
    # The skewed lease either serves a stale epoch or makes two write
    # leases look concurrently live — both are the seeded bug.
    assert entry["violations"][0]["invariant"] in ("stale-epoch-use",
                                                   "swmr")


def test_printed_seed_replays_the_same_violation():
    """Acceptance check: a deliberately-broken invariant reproduces
    from its printed seed — the walk rerun with the reported seed and
    the recorded choices hits the identical violation."""
    mutation = MUTATIONS["skew-ltime"]
    found = None
    for scenario in catalog(mutation.kinds):
        _, failure = random_walks(scenario, 20, seed=11,
                                  mutation=mutation, shrink=False)
        if failure is not None:
            found = failure
            break
    assert found is not None
    assert found.seed == 11
    # Replay 1: the recorded choices on a fresh mutated world.
    replay = execute_schedule(found.scenario, found.choices,
                              mutation=mutation)
    assert replay.failed
    assert replay.violations[0].invariant == \
        found.violations[0].invariant
    # Replay 2: re-running the walks with the same seed finds the same
    # failure at the same schedule index.
    _, again = random_walks(found.scenario, 20, seed=found.seed,
                            mutation=mutation, shrink=False)
    assert again is not None
    assert again.choices == found.choices
    assert again.schedule_index == found.schedule_index
