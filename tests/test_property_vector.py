"""Property-based tests: the vector (array-compiled) rung is invisible.

The vectorised window fast path (``phase_quote_batch`` + the bulk
closed-form timeline in ``AxcCore._run_window``) sits one rung above
the steady-state phase engine on the fallback ladder
(``docs/simulator.md`` §13) and, like every rung below it, is a pure
interpreter optimisation: for any trace, on any evaluated system, the
:class:`RunResult` with ``VECTOR_PHASES`` enabled must be
*bit-identical* — every cycle count and every stats counter, floats
compared via ``repr`` — to the one computed with the rung disabled
(which serves the same stream through the per-phase path).

The traces are biased toward the rung's targets (long stretches of
consecutive lease-stable phases) *and* its guards: kind changes mid
stretch, cross-line churn through the tiny L0X, compute interleave,
and — adversarially — lease times so short that leases expire mid
window, forcing ACC's batched cover guard into its partial-prefix and
full-decline branches.

A final test pins the numpy-less contract: with
``repro.workloads.vector.HAVE_NUMPY`` forced off the rung must warn
once (RuntimeWarning), degrade to the phase engine, and still report
bit-identical results.
"""

import warnings

import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

import repro.accel.core as core_mod
import repro.workloads.vector as vector_mod
from repro.common.config import small_config
from repro.common.types import AccessType, ComputeOp, FunctionTrace, \
    MemOp, WorkloadTrace
from repro.systems import SYSTEMS
from repro.systems.multitenant import MultiTenantFusionSystem

# Same trace shapes as tests/test_property_phases.py: runs up to 12 ops
# build phases the compilers accept, a 16-line pool keeps lines
# churning, and back-to-back runs build the multi-phase windows the
# vector compiler slices.
run_segment = st.tuples(
    st.integers(0, 15),       # block index in the shared pool
    st.booleans(),            # store?
    st.integers(1, 12),       # run length
)
compute_segment = st.builds(ComputeOp, int_ops=st.integers(1, 8))
segments = st.lists(st.one_of(run_segment, compute_segment),
                    min_size=1, max_size=24)

workloads = st.lists(
    st.tuples(st.integers(0, 2), segments),   # (function tag, segments)
    min_size=1, max_size=4)

#: Lease times from "expires before a window can even open" through the
#: catalog default: the short end drives ACC's batched cover compare
#: into partial-prefix accepts and full declines.
lease_times = st.sampled_from([1, 3, 7, 30, 250])

BASE = 0x10000


def _expand(segs):
    ops = []
    for seg in segs:
        if isinstance(seg, ComputeOp):
            ops.append(seg)
            continue
        index, is_store, length = seg
        kind = AccessType.STORE if is_store else AccessType.LOAD
        for word in range(length):
            ops.append(MemOp(kind, BASE + index * 64 + (word % 8) * 8))
    return ops


def build(spec, lease_time=250):
    invocations = [
        FunctionTrace(name="fn{}".format(tag), benchmark="prop",
                      ops=_expand(segs), lease_time=lease_time)
        for tag, segs in spec
        if _expand(segs)
    ]
    size = 16 * 64
    return WorkloadTrace(
        benchmark="prop", invocations=invocations,
        host_input_arrays=[(BASE, size)],
        host_output_arrays=[(BASE, size)],
        array_ranges={"pool": (BASE, size)},
    )


def fingerprint(result):
    """Everything a RunResult reports, floats pinned via ``repr``."""
    return {
        "accel_cycles": result.accel_cycles,
        "total_cycles": result.total_cycles,
        "energy_pj": repr(result.energy.total_pj),
        "stats": sorted((name, repr(value))
                        for name, value in result.stats.items()),
    }


def run_both_paths(make_system):
    original = core_mod.VECTOR_PHASES
    try:
        core_mod.VECTOR_PHASES = True
        vectored = make_system().run()
        core_mod.VECTOR_PHASES = False
        fallback = make_system().run()
    finally:
        core_mod.VECTOR_PHASES = original
    return vectored, fallback


@given(workloads)
@settings(max_examples=20, deadline=None)
def test_vector_results_bit_identical_on_all_systems(spec):
    """All six systems — the four designs, IDEAL and the pipelined
    tile — report identical results with the rung on and off."""
    note("workload spec: {!r}".format(spec))
    workload = build(spec)
    if not workload.invocations:
        return
    for system_cls in SYSTEMS.values():
        vectored, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(vectored) == fingerprint(fallback), \
            "vector rung changed {} results".format(system_cls.name)


@given(workloads, lease_times)
@settings(max_examples=20, deadline=None)
def test_adversarial_leases_stay_bit_identical(spec, lease_time):
    """Leases expiring mid-window (or before one opens) must cap the
    accepted prefix or decline — never corrupt the timeline."""
    note("workload spec: {!r} lease_time={}".format(spec, lease_time))
    workload = build(spec, lease_time=lease_time)
    if not workload.invocations:
        return
    for name in ("FUSION", "FUSION-Dx", "FUSION-PIPE"):
        system_cls = SYSTEMS[name]
        vectored, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(vectored) == fingerprint(fallback), \
            "vector rung changed {} results under lease {}".format(
                name, lease_time)


@given(workloads, workloads)
@settings(max_examples=15, deadline=None)
def test_multitenant_bit_identical(spec_a, spec_b):
    """Two co-resident processes time-sharing one tile: the vector
    rung must stay invisible across the interleaved invocations."""
    note("workload specs: {!r} / {!r}".format(spec_a, spec_b))
    tenants = [build(spec_a), build(spec_b, lease_time=30)]
    if not all(w.invocations for w in tenants):
        return
    vectored, fallback = run_both_paths(
        lambda: MultiTenantFusionSystem(small_config(), tenants))
    assert fingerprint(vectored) == fingerprint(fallback), \
        "vector rung changed multi-tenant results"


def test_numpy_less_fallback_warns_once_and_matches(monkeypatch):
    """With numpy masked out, ``VECTOR_PHASES=1`` must degrade to the
    phase engine after exactly one RuntimeWarning, and the results must
    still match the rung-off run bit for bit."""
    spec = [(0, [(0, False, 8), (1, True, 8), (0, False, 8)])]
    workload = build(spec)
    system_cls = SYSTEMS["FUSION"]

    monkeypatch.setattr(core_mod, "VECTOR_PHASES", True)
    reference = system_cls(small_config(), workload).run()

    monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
    monkeypatch.setattr(core_mod, "_warned_no_numpy", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        degraded = system_cls(small_config(), workload).run()
        again = system_cls(small_config(), workload).run()
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)
               and "numpy" in str(w.message)]
    assert len(runtime) == 1, "warn-once contract broken"
    assert fingerprint(degraded) == fingerprint(reference)
    assert fingerprint(again) == fingerprint(reference)


def test_numpy_less_silent_when_rung_disabled(monkeypatch):
    """No numpy *and* no request for the rung: nothing to warn about."""
    monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
    monkeypatch.setattr(core_mod, "_warned_no_numpy", False)
    monkeypatch.setattr(core_mod, "VECTOR_PHASES", False)
    spec = [(0, [(0, False, 6), (1, False, 6)])]
    workload = build(spec)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        SYSTEMS["FUSION"](small_config(), workload).run()
    assert not [w for w in caught
                if issubclass(w.category, RuntimeWarning)]
