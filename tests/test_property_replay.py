"""Property-based tests: the invocation replay cache is invisible.

The guarded invocation replay cache (``repro.accel.replay``) is the top
rung of the fallback ladder (``docs/simulator.md`` §11) and, like the
rungs below it, a pure interpreter optimisation: for any workload, on
any evaluated system, the :class:`RunResult` with ``REPLAY_INVOCATIONS``
enabled must be *bit-identical* — every cycle count and every stats
counter, floats compared via ``repr`` — to the one computed with the
rung disabled (which serves every invocation through the phase path).

The workloads repeat each function several times (the replay engine
never records a key that cannot recur), and are biased toward the
guard's hard cases: cross-line churn evicting lines under pressure in
the tiny L0X, leases so short they expire mid-invocation, forwarding
plans (FUSION-Dx), and alternating function contents that force guard
misses and the engine's decline/disable paths.
"""

from hypothesis import given, note, settings
from hypothesis import strategies as st

import repro.accel.replay as replay_mod
from repro.common.config import small_config
from repro.common.types import AccessType, ComputeOp, FunctionTrace, \
    MemOp, WorkloadTrace
from repro.systems import SYSTEMS
from repro.systems.multitenant import MultiTenantFusionSystem

# A segment is either a same-line access run (block index, store?,
# length) or a compute op — the same shapes the phase-engine suite
# uses, so every replayed invocation exercises the rungs below too.
run_segment = st.tuples(
    st.integers(0, 15),       # block index in the shared pool
    st.booleans(),            # store?
    st.integers(1, 12),       # run length
)
compute_segment = st.builds(ComputeOp, int_ops=st.integers(1, 8))
segments = st.lists(st.one_of(run_segment, compute_segment),
                    min_size=1, max_size=16)

functions = st.lists(
    st.tuples(st.integers(0, 2), segments),   # (function tag, segments)
    min_size=1, max_size=3)

#: Iteration counts past the engine's recording floor, so later
#: iterations genuinely probe (and, in steady state, hit).
iteration_counts = st.integers(3, 6)

#: Lease times from "expires before the invocation ends" through the
#: catalog default: the short end keeps every recorded lease out of the
#: guard's COVERS class, exercising PAST and exact-relative matching.
lease_times = st.sampled_from([1, 3, 7, 30, 250])

BASE = 0x10000

#: Block pool spanning more lines than the small config's L0X holds,
#: so repeated invocations evict under pressure while recorded.
PRESSURE_BLOCKS = 96


def _expand(segs, num_blocks=16):
    ops = []
    for seg in segs:
        if isinstance(seg, ComputeOp):
            ops.append(seg)
            continue
        index, is_store, length = seg
        kind = AccessType.STORE if is_store else AccessType.LOAD
        for word in range(length):
            ops.append(MemOp(kind, BASE + (index % num_blocks) * 64
                             + (word % 8) * 8))
    return ops


def build(spec, iterations=4, lease_time=250, num_blocks=16):
    functions = [
        FunctionTrace(name="fn{}".format(tag), benchmark="prop",
                      ops=_expand(segs, num_blocks),
                      lease_time=lease_time)
        for tag, segs in spec
        if _expand(segs)
    ]
    # Round-robin repetition: the same invocation recurs ``iterations``
    # times with the others interleaved, like the paper's streaming
    # pipelines — exactly the shape the replay cache targets.
    invocations = [trace for _ in range(iterations)
                   for trace in functions]
    size = num_blocks * 64
    return WorkloadTrace(
        benchmark="prop", invocations=invocations,
        host_input_arrays=[(BASE, size)],
        host_output_arrays=[(BASE, size)],
        array_ranges={"pool": (BASE, size)},
    )


def fingerprint(result):
    """Everything a RunResult reports, floats pinned via ``repr``."""
    return {
        "accel_cycles": result.accel_cycles,
        "total_cycles": result.total_cycles,
        "energy_pj": repr(result.energy.total_pj),
        "stats": sorted((name, repr(value))
                        for name, value in result.stats.items()),
    }


def run_both_paths(make_system):
    original = replay_mod.REPLAY_INVOCATIONS
    try:
        replay_mod.REPLAY_INVOCATIONS = True
        replayed = make_system().run()
        replay_mod.REPLAY_INVOCATIONS = False
        fallback = make_system().run()
    finally:
        replay_mod.REPLAY_INVOCATIONS = original
    return replayed, fallback


@given(functions, iteration_counts)
@settings(max_examples=15, deadline=None)
def test_replay_results_bit_identical_on_all_systems(spec, iterations):
    """All six systems — the four designs, IDEAL and the pipelined
    tile — report identical results with the replay rung on and off."""
    note("workload spec: {!r} x{}".format(spec, iterations))
    workload = build(spec, iterations=iterations)
    if not workload.invocations:
        return
    for system_cls in SYSTEMS.values():
        replayed, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(replayed) == fingerprint(fallback), \
            "replay cache changed {} results".format(system_cls.name)


@given(functions, lease_times)
@settings(max_examples=15, deadline=None)
def test_adversarial_leases_stay_bit_identical(spec, lease_time):
    """Leases expiring mid-invocation (or before the next one starts)
    must make the guard decline or class-match — never corrupt state."""
    note("workload spec: {!r} lease_time={}".format(spec, lease_time))
    workload = build(spec, iterations=4, lease_time=lease_time)
    if not workload.invocations:
        return
    for name in ("FUSION", "FUSION-Dx", "SHARED"):
        system_cls = SYSTEMS[name]
        replayed, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(replayed) == fingerprint(fallback), \
            "replay cache changed {} results under lease {}".format(
                name, lease_time)


@given(functions, iteration_counts)
@settings(max_examples=10, deadline=None)
def test_eviction_under_pressure_stays_bit_identical(spec, iterations):
    """A pool wider than the L0X: recorded invocations evict lines
    under pressure, and the guard must pin LRU order exactly."""
    note("workload spec: {!r} x{}".format(spec, iterations))
    workload = build(spec, iterations=iterations,
                     num_blocks=PRESSURE_BLOCKS)
    if not workload.invocations:
        return
    for name in ("FUSION", "FUSION-Dx", "SCRATCH"):
        system_cls = SYSTEMS[name]
        replayed, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(replayed) == fingerprint(fallback), \
            "replay cache changed {} results under pressure".format(name)


@given(functions, functions)
@settings(max_examples=10, deadline=None)
def test_multitenant_bit_identical(spec_a, spec_b):
    """Two co-resident processes time-sharing one tile: flipping the
    replay flag must not perturb the interleaved invocations."""
    note("workload specs: {!r} / {!r}".format(spec_a, spec_b))
    tenants = [build(spec_a), build(spec_b, lease_time=30)]
    if not all(w.invocations for w in tenants):
        return
    replayed, fallback = run_both_paths(
        lambda: MultiTenantFusionSystem(small_config(), tenants))
    assert fingerprint(replayed) == fingerprint(fallback), \
        "replay flag changed multi-tenant results"


def _steady_workload(iterations=8):
    """A deterministic streaming loop that reaches replay steady state."""
    segs = [(i, i % 2 == 0, 8) for i in range(8)]
    return build([(0, segs), (1, list(reversed(segs)))],
                 iterations=iterations)


def test_replay_engine_actually_hits():
    """Anti-vacuity: on a steady iterated workload the FUSION engine
    must serve invocations from the replay cache, not just fall back."""
    workload = _steady_workload()
    original = replay_mod.REPLAY_INVOCATIONS
    try:
        replay_mod.REPLAY_INVOCATIONS = True
        system = SYSTEMS["FUSION"](small_config(), workload)
        system.run()
    finally:
        replay_mod.REPLAY_INVOCATIONS = original
    engine = system.replay_engine
    assert engine is not None
    assert engine.hits > 0, "replay guard never matched a recording"


def test_forced_decline_paths_stay_bit_identical():
    """Tiny store/disable budgets force the decline and key-disable
    paths; results must stay bit-identical while misses accumulate."""
    workload = _steady_workload()
    saved = (replay_mod.MAX_RECORDINGS_PER_KEY,
             replay_mod.DISABLE_AFTER_MISSES)
    try:
        replay_mod.MAX_RECORDINGS_PER_KEY = 1
        replay_mod.DISABLE_AFTER_MISSES = 1
        replayed, fallback = run_both_paths(
            lambda: SYSTEMS["FUSION"](small_config(), workload))
    finally:
        (replay_mod.MAX_RECORDINGS_PER_KEY,
         replay_mod.DISABLE_AFTER_MISSES) = saved
    assert fingerprint(replayed) == fingerprint(fallback)
    # The constrained store must have declined at least once (the cold
    # recording can never match the warm second iteration).
    original = replay_mod.REPLAY_INVOCATIONS
    try:
        replay_mod.REPLAY_INVOCATIONS = True
        replay_mod.MAX_RECORDINGS_PER_KEY = 1
        replay_mod.DISABLE_AFTER_MISSES = 1
        system = SYSTEMS["FUSION"](small_config(), workload)
        system.run()
    finally:
        replay_mod.REPLAY_INVOCATIONS = original
        (replay_mod.MAX_RECORDINGS_PER_KEY,
         replay_mod.DISABLE_AFTER_MISSES) = saved
    assert system.replay_engine.misses > 0


def test_lease_expiry_mid_span_declines_cleanly():
    """Leases shorter than the invocation span: recorded lease fields
    sit in the PAST/exact classes and every iteration must still agree
    with the fallback path bit for bit."""
    segs = [(i, True, 12) for i in range(6)]
    workload = build([(0, segs)], iterations=6, lease_time=3)
    replayed, fallback = run_both_paths(
        lambda: SYSTEMS["FUSION"](small_config(), workload))
    assert fingerprint(replayed) == fingerprint(fallback)
