"""Property-based tests: the pipelined scheduler on random workloads.

Random multi-function workloads with arbitrary block overlap must
schedule correctly: everything completes, the accounting validates, the
same work is performed, and overlap can only help."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import small_config
from repro.common.types import AccessType, ComputeOp, FunctionTrace, \
    MemOp, WorkloadTrace
from repro.sim.validate import validate
from repro.systems import FusionSystem, PipelinedFusionSystem

# Functions draw blocks from a small pool so overlap (and therefore
# dependence edges) is common but not universal.
mem_op = st.builds(
    MemOp,
    kind=st.sampled_from(list(AccessType)),
    addr=st.integers(0, 23).map(lambda i: 0x10000 + i * 64),
)
function_ops = st.lists(
    st.one_of(mem_op, st.builds(ComputeOp, int_ops=st.integers(1, 8))),
    min_size=1, max_size=25)

workloads = st.lists(
    st.tuples(st.integers(0, 3), function_ops),  # (axc tag, ops)
    min_size=1, max_size=6)


def build(spec):
    invocations = [
        FunctionTrace(name="fn{}".format(axc_tag), benchmark="prop",
                      ops=list(ops), lease_time=300)
        for axc_tag, ops in spec
    ]
    base = 0x10000
    size = 24 * 64
    return WorkloadTrace(
        benchmark="prop", invocations=invocations,
        host_input_arrays=[(base, size)],
        host_output_arrays=[(base, size)],
        array_ranges={"pool": (base, size)},
    )


@given(workloads)
@settings(max_examples=60, deadline=None)
def test_pipelined_schedules_random_workloads(spec):
    workload = build(spec)
    sequential = FusionSystem(small_config(), workload).run()
    pipelined = PipelinedFusionSystem(small_config(), workload).run()
    # Everything completed and validates.
    assert validate(pipelined) == []
    assert set(pipelined.function_names()) == \
        set(workload.function_names())
    # Overlap can only help (small slack for flush-ordering jitter).
    assert pipelined.accel_cycles <= sequential.accel_cycles * 1.02 + 4


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_pipelined_performs_identical_work(spec):
    workload = build(spec)
    sequential = FusionSystem(small_config(), workload).run()
    pipelined = PipelinedFusionSystem(small_config(), workload).run()

    def accesses(result):
        return sum(v for k, v in result.stats.items()
                   if k.startswith("l0x.axc") and
                   k.endswith(".accesses"))

    assert accesses(pipelined) == accesses(sequential)


@given(workloads)
@settings(max_examples=40, deadline=None)
def test_pipelined_leaves_no_dirty_state(spec):
    workload = build(spec)
    system = PipelinedFusionSystem(small_config(), workload)
    system.run()
    for l0x in system.tile.l0xs:
        assert not l0x.cache.dirty_lines()
        assert not l0x._incoming_forwards
