"""MSHR file (repro.mem.mshr)."""

import pytest

from repro.common.errors import SimulationError
from repro.mem.mshr import MshrFile


def test_allocate_and_outstanding():
    mshr = MshrFile(num_entries=2)
    mshr.allocate(0x40, complete_at=100)
    assert mshr.outstanding(0x40) == 100
    assert mshr.outstanding(0x80) is None


def test_full_raises():
    mshr = MshrFile(num_entries=1)
    mshr.allocate(0, 10)
    assert mshr.full
    with pytest.raises(SimulationError):
        mshr.allocate(64, 10)


def test_duplicate_primary_raises():
    mshr = MshrFile(num_entries=4)
    mshr.allocate(0, 10)
    with pytest.raises(SimulationError):
        mshr.allocate(0, 20)


def test_release_completed():
    mshr = MshrFile(num_entries=4)
    mshr.allocate(0, 10)
    mshr.allocate(64, 20)
    done = mshr.release_completed(now=15)
    assert done == [0]
    assert mshr.occupancy == 1


def test_earliest_completion():
    mshr = MshrFile()
    assert mshr.earliest_completion() is None
    mshr.allocate(0, 30)
    mshr.allocate(64, 10)
    assert mshr.earliest_completion() == 10


def test_clear():
    mshr = MshrFile()
    mshr.allocate(0, 10)
    mshr.clear()
    assert mshr.occupancy == 0
