"""The sweep-service daemon end to end (repro.sim.service).

These tests run the real daemon as a subprocess (``fusion-sim serve``)
against a private store and cache root, drive it with the line-protocol
client, and hold it to the acceptance bar: results bit-identical to a
direct ``engine.run_batch`` of the same grid, overlapping submissions
sharing rows, and a ``kill -9`` mid-grid resuming from the durable
store on restart.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.sim import export
from repro.sim import jobs as jobs_mod
from repro.sim.engine import DiskCache, ExecutionEngine
from repro.sim.service import ServiceClient
from repro.sim.store import ExperimentStore

SPEC = {"systems": ["FUSION", "SHARED"], "benchmarks": ["adpcm", "fft"],
        "size": "tiny", "axes": [{"kind": "lease",
                                  "values": [100, 500]}]}

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


class Daemon:
    """One ``fusion-sim serve`` subprocess over a private store/cache."""

    def __init__(self, tmp_path, batch=1, poll="0.05", extra_env=None):
        self.tmp_path = tmp_path
        self.store_path = str(tmp_path / "store.db")
        self.announce = str(tmp_path / "announce-{}.json".format(
            time.monotonic_ns()))
        env = dict(os.environ,
                   PYTHONPATH=SRC + os.pathsep
                   + os.environ.get("PYTHONPATH", ""),
                   REPRO_CACHE_DIR=str(tmp_path / "cache"),
                   REPRO_JOBS="1")
        env.update(extra_env or {})
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--store", self.store_path, "--batch", str(batch),
             "--poll", poll, "--announce", self.announce],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)

    def wait_ready(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(self.announce):
                with open(self.announce) as fileobj:
                    return json.load(fileobj)
            if self.process.poll() is not None:
                raise AssertionError(
                    "daemon died during startup:\n"
                    + self.process.stdout.read().decode())
            time.sleep(0.02)
        raise AssertionError("daemon never announced")

    def client(self):
        info = self.wait_ready()
        return ServiceClient(info["host"], info["port"])

    def kill9(self):
        self.process.kill()
        self.process.wait(timeout=10)

    def stop(self):
        if self.process.poll() is None:
            try:
                with self.client() as client:
                    client.shutdown()
                self.process.wait(timeout=15)
            except Exception:
                self.process.terminate()
                try:
                    self.process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait(timeout=10)


def direct_results(spec, cache_root):
    """The same grid through a direct engine — the golden answer."""
    engine = ExecutionEngine(jobs=1, cache=DiskCache(cache_root))
    entries = list(jobs_mod.spec_points(spec))
    results = engine.run_batch([request for _k, _p, request in entries])
    return {key: result for (key, _p, _r), result
            in zip(entries, results)}


def exported(result):
    payload = export.result_to_dict(result)
    payload.pop("engine", None)
    return payload


def fetch_by_key(payload):
    out = {}
    for row in payload["rows"]:
        key = jobs_mod.run_key(row["point"])
        body = dict(row["result"] or {})
        body.pop("engine", None)
        out[key] = (row["status"], body)
    return out


@pytest.mark.slow
def test_service_end_to_end_matches_direct_engine(tmp_path):
    golden = direct_results(SPEC, tmp_path / "direct-cache")
    daemon = Daemon(tmp_path, batch=2)
    try:
        with daemon.client() as client:
            assert client.ping()["ok"]
            job_id = client.submit(SPEC, client="pytest")
            counts = client.wait(job_id, timeout=300)
            assert counts["done"] == counts["total"] == 8
            payload = client.fetch(job_id)
    finally:
        daemon.stop()
    rows = fetch_by_key(payload)
    assert set(rows) == set(golden)
    for key, result in golden.items():
        status, body = rows[key]
        assert status == "done"
        assert body == exported(result)
    # spec metrics came back for every row
    for row in payload["rows"]:
        assert set(row["metrics"]) == {"accel_cycles", "energy_uj"}


@pytest.mark.slow
def test_two_concurrent_clients_share_rows(tmp_path):
    """Overlapping sweeps from two clients: every duplicate row is
    executed once and both clients get identical, direct-equal data."""
    spec_a = SPEC
    spec_b = dict(SPEC, systems=["SHARED", "SCRATCH"])
    daemon = Daemon(tmp_path, batch=2)
    payloads = {}
    errors = []

    def submit_and_wait(name, spec):
        try:
            with daemon.client() as client:
                job_id = client.submit(spec, client=name)
                client.wait(job_id, timeout=300)
                payloads[name] = client.fetch(job_id)
        except Exception as exc:  # surfaced after join
            errors.append((name, exc))

    try:
        daemon.wait_ready()
        threads = [
            threading.Thread(target=submit_and_wait, args=("a", spec_a)),
            threading.Thread(target=submit_and_wait, args=("b", spec_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
    finally:
        daemon.stop()
    assert not errors, errors

    golden = direct_results(spec_a, tmp_path / "direct-cache")
    golden.update(direct_results(spec_b, tmp_path / "direct-cache"))
    store = ExperimentStore(daemon.store_path)
    try:
        counts = store.counts()
        # 3 systems x 2 benchmarks x 2 leases unique points — the
        # 4 overlapping (SHARED) rows were shared, not duplicated.
        assert sum(counts.values()) == 12
        assert counts["done"] == 12
    finally:
        store.close()
    for name, spec in (("a", spec_a), ("b", spec_b)):
        rows = fetch_by_key(payloads[name])
        for key, _point, _request in jobs_mod.spec_points(spec):
            status, body = rows[key]
            assert status == "done"
            assert body == exported(golden[key])


@pytest.mark.slow
def test_kill9_mid_grid_resumes_on_restart(tmp_path):
    """The acceptance drill: SIGKILL the daemon mid-grid; a restarted
    daemon resumes the half-finished grid from the durable store and
    the completed job matches the direct engine bit for bit."""
    golden = direct_results(SPEC, tmp_path / "direct-cache")
    first = Daemon(tmp_path, batch=1)
    job_id = None
    try:
        with first.client() as client:
            job_id = client.submit(SPEC, client="pytest-kill9")
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                counts = client.status(job_id)
                if 0 < counts["done"] < counts["total"]:
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("grid finished too fast to kill")
    finally:
        first.kill9()

    # The store survived with a half-finished grid (possibly rows
    # still marked claimed by the dead daemon).
    store = ExperimentStore(first.store_path)
    try:
        before = store.counts()
    finally:
        store.close()
    assert 0 < before["done"] < 8
    assert before["pending"] + before["claimed"] > 0

    second = Daemon(tmp_path, batch=1)
    try:
        with second.client() as client:
            counts = client.wait(job_id, timeout=300)
            assert counts["done"] == counts["total"] == 8
            payload = client.fetch(job_id)
            events = client.events(count=50)
    finally:
        second.stop()
    rows = fetch_by_key(payload)
    for key, result in golden.items():
        status, body = rows[key]
        assert status == "done"
        assert body == exported(result)
    # The restart is visible in the durable event journal.
    assert sum(1 for e in events if e["event"] == "started") >= 2
