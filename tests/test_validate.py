"""Post-run validation (repro.sim.validate)."""

import dataclasses

import pytest

from repro.common.errors import SimulationError
from repro.sim.simulator import run
from repro.sim.validate import check_or_raise, validate
from repro.workloads.registry import BENCHMARKS


@pytest.mark.parametrize("system", ["SCRATCH", "SHARED", "FUSION",
                                    "FUSION-Dx", "IDEAL"])
@pytest.mark.parametrize("bench", BENCHMARKS)
def test_every_run_is_internally_consistent(system, bench):
    result = run(system, bench, "tiny")
    assert validate(result) == []


def test_check_or_raise_passes_through_clean_results():
    result = run("FUSION", "adpcm", "tiny")
    assert check_or_raise(result) is result


def _corrupt(result, **stat_overrides):
    stats = dict(result.stats)
    stats.update(stat_overrides)
    return dataclasses.replace(result, stats=stats)


def test_detects_broken_hit_accounting():
    result = run("FUSION", "adpcm", "tiny")
    broken = _corrupt(result, **{"l0x.axc0.hits":
                                 result.stat("l0x.axc0.hits") + 5})
    assert any("axc0" in v for v in validate(broken))


def test_detects_broken_epoch_accounting():
    result = run("FUSION", "adpcm", "tiny")
    broken = _corrupt(result, **{"l1x.read_epochs": 10 ** 9})
    assert any("epochs" in v for v in validate(broken))


def test_detects_broken_dma_bytes():
    result = run("SCRATCH", "adpcm", "tiny")
    broken = _corrupt(result, **{"dma.bytes_in": 1})
    assert any("DMA" in v for v in validate(broken))


def test_detects_negative_cycles():
    result = run("FUSION", "adpcm", "tiny")
    broken = dataclasses.replace(result, accel_cycles=0)
    assert any("cycle" in v for v in validate(broken))


def test_check_or_raise_raises_on_corruption():
    result = run("FUSION", "adpcm", "tiny")
    broken = _corrupt(result, **{"l0x.axc0.hits": 10 ** 9})
    with pytest.raises(SimulationError):
        check_or_raise(broken)
