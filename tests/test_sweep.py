"""Design-space sweep utilities (repro.sim.sweep)."""

import pytest

from repro.sim.sweep import (
    METRICS,
    config_axis,
    l0x_axis,
    l1x_axis,
    lease_axis,
    sweep,
)


def test_lease_axis_sweeps_configs():
    table, results = sweep(
        systems=("FUSION",), benchmarks=("adpcm",),
        axes=[lease_axis(100, 1000)], size="tiny")
    assert len(table.rows) == 2
    assert table.headers[:3] == ["System", "Benchmark", "lease"]
    assert set(results) == {("FUSION", "adpcm", "100"),
                            ("FUSION", "adpcm", "1000")}


def test_two_axis_grid_is_a_product():
    table, results = sweep(
        systems=("FUSION",), benchmarks=("adpcm",),
        axes=[l0x_axis(2, 4), l1x_axis(32, 64)], size="tiny")
    assert len(table.rows) == 4
    assert ("FUSION", "adpcm", "2", "64") in results


def test_axisless_sweep_runs_once_per_cell():
    table, results = sweep(
        systems=("SCRATCH", "FUSION"), benchmarks=("adpcm", "filter"),
        axes=[], size="tiny")
    assert len(table.rows) == 4


def test_metrics_are_extracted():
    table, results = sweep(
        systems=("FUSION",), benchmarks=("adpcm",), axes=[],
        metrics=("accel_cycles", "l1x_misses", "link_utilization"),
        size="tiny")
    row = table.rows[0]
    result = results[("FUSION", "adpcm")]
    assert float(row[2]) == pytest.approx(result.accel_cycles)
    assert float(row[3]) == result.stat("l1x.misses")


def test_unknown_metric_rejected():
    with pytest.raises(KeyError):
        sweep(systems=("FUSION",), benchmarks=("adpcm",), axes=[],
              metrics=("speed_of_light",), size="tiny")


def test_l0x_axis_changes_behaviour():
    _, results = sweep(
        systems=("FUSION",), benchmarks=("filter",),
        axes=[l0x_axis(1, 8)], size="tiny",
        metrics=("energy_uj",))
    tiny_l0x = results[("FUSION", "filter", "1")]
    big_l0x = results[("FUSION", "filter", "8")]

    def misses(result):
        return sum(v for k, v in result.stats.items()
                   if k.startswith("l0x.axc") and k.endswith(".misses"))

    assert misses(big_l0x) <= misses(tiny_l0x)


def test_custom_axis():
    from dataclasses import replace
    axis = config_axis("banks", {
        "1": lambda c: replace(c, tile=replace(
            c.tile, l1x=replace(c.tile.l1x, banks=1))),
        "16": lambda c: c,
    })
    _, results = sweep(systems=("FUSION",), benchmarks=("adpcm",),
                       axes=[axis], size="tiny", metrics=("energy_uj",))
    flat = results[("FUSION", "adpcm", "1")].stat("l1x.energy_pj")
    banked = results[("FUSION", "adpcm", "16")].stat("l1x.energy_pj")
    assert flat > banked  # banking saves L1X access energy


def test_all_metrics_resolve():
    table, _ = sweep(systems=("SCRATCH",), benchmarks=("adpcm",),
                     axes=[], metrics=tuple(sorted(METRICS)),
                     size="tiny")
    assert len(table.rows[0]) == 2 + len(METRICS)


# -- the axis-product grid itself ------------------------------------------

def test_grid_empty_axes_yields_one_empty_point():
    from repro.sim.sweep import _grid
    assert list(_grid([])) == [((), ())]


def test_grid_ordering_is_row_major():
    from repro.sim.sweep import _grid

    def t(tag):
        def transform(config):
            return config
        transform.tag = tag
        return transform

    axes = [("a", [("1", t("a1")), ("2", t("a2"))]),
            ("b", [("x", t("bx")), ("y", t("by"))])]
    points = list(_grid(axes))
    assert [labels for labels, _ in points] == [
        ("1", "x"), ("1", "y"), ("2", "x"), ("2", "y")]
    # Transforms stay paired with their labels, first axis first.
    for labels, transforms in points:
        assert [f.tag for f in transforms] == [
            "a" + labels[0], "b" + labels[1]]


def test_grid_single_axis_preserves_point_order():
    from repro.sim.sweep import _grid
    axis = ("lease", [(str(v), None) for v in (500, 100, 2000)])
    labels = [labels for labels, _ in _grid([axis])]
    assert labels == [("500",), ("100",), ("2000",)]
