"""Multi-tenant FUSION tile: PID tagging (repro.systems.multitenant)."""

import pytest

from repro.common.config import small_config
from repro.systems import FusionSystem
from repro.systems.multitenant import MultiTenantFusionSystem
from repro.workloads.registry import build_workload


def run_mt(names, size="tiny"):
    workloads = [build_workload(name, size) for name in names]
    return MultiTenantFusionSystem(small_config(), workloads).run()


def test_two_processes_share_the_tile():
    result = run_mt(["adpcm", "filter"])
    assert result.benchmark == "adpcm+filter"
    assert result.accel_cycles > 0
    assert result.energy.total_pj > 0


def test_requires_a_workload():
    with pytest.raises(ValueError):
        MultiTenantFusionSystem(small_config(), [])


def test_pid_conflicts_detected_on_shared_l1x():
    """Both processes allocate from the same virtual base, so their
    virtual lines collide in the virtually-indexed L1X; PID tags must
    turn those collisions into conflicts, never into aliased hits."""
    result = run_mt(["adpcm", "filter"])
    assert result.stat("l1x.pid_conflicts") > 0


def test_single_tenant_has_no_pid_conflicts():
    workload = build_workload("adpcm", "tiny")
    result = MultiTenantFusionSystem(small_config(), [workload]).run()
    assert result.stat("l1x.pid_conflicts") == 0


def test_every_process_runs_all_its_functions():
    wl_a = build_workload("adpcm", "tiny")
    wl_b = build_workload("filter", "tiny")
    result = run_mt(["adpcm", "filter"])
    expected = set(wl_a.function_names()) | set(wl_b.function_names())
    assert set(result.function_names()) == expected


def test_processes_use_disjoint_physical_frames():
    wl = [build_workload("adpcm", "tiny"),
          build_workload("filter", "tiny")]
    system = MultiTenantFusionSystem(small_config(), wl)
    paddr_a = system.page_tables[0].translate(0x10000)
    paddr_b = system.page_tables[1].translate(0x10000)
    assert paddr_a != paddr_b


def test_isolation_no_cross_process_data_reuse():
    """Process B re-reading the same virtual addresses as process A must
    fetch its own physical copies: the L1X miss count for the pair is at
    least the sum of each process alone (sharing would make it lower)."""
    wl = build_workload("adpcm", "tiny")
    solo = FusionSystem(small_config(), wl).run()
    pair = MultiTenantFusionSystem(small_config(), [wl, wl]).run()
    assert pair.stat("l1x.misses") >= 2 * solo.stat("l1x.misses")


def test_multitenant_costs_more_than_sum_of_parts():
    """Time-sharing one tile thrashes the shared L1X: the pair's cycles
    exceed either solo run."""
    solo = FusionSystem(small_config(),
                        build_workload("adpcm", "tiny")).run()
    pair = run_mt(["adpcm", "filter"])
    assert pair.accel_cycles > solo.accel_cycles


# -- per-tenant coherence strategies (multitenant strategy handoff) ----------

def run_mt_strategies(names, strategies, size="tiny"):
    workloads = [build_workload(name, size) for name in names]
    return MultiTenantFusionSystem(small_config(), workloads,
                                   strategies=strategies).run()


def test_uniform_fusion_strategies_match_default_bit_for_bit():
    """Handing every tenant the plain fusion strategy must be the
    legacy multi-tenant path exactly — same cycles, same stats."""
    default = run_mt(["adpcm", "filter"])
    explicit = run_mt_strategies(["adpcm", "filter"],
                                 ("fusion", "fusion"))
    assert explicit == default


def test_strategies_length_must_match_workloads():
    workloads = [build_workload("adpcm", "tiny")]
    with pytest.raises(ValueError, match="1 workloads"):
        MultiTenantFusionSystem(small_config(), workloads,
                                strategies=("fusion", "scratch"))


def test_per_tenant_lease_changes_behaviour():
    default = run_mt(["adpcm", "filter"])
    leased = run_mt_strategies(["adpcm", "filter"],
                               ("fusion", "fusion:lease=100"))
    assert leased.accel_cycles > 0
    assert leased.stats != default.stats


def test_scratch_tenant_beside_fusion_tenant():
    """One tenant on scratchpad DMA, one on the leased tile: the DMA
    tenant's traffic flows and the tile tenant still leases — on one
    host directory."""
    result = run_mt_strategies(["adpcm", "filter"],
                               ("fusion", "scratch"))
    assert result.accel_cycles > 0
    assert result.stat("dma.bytes_in") > 0        # scratch tenant ran
    assert result.stat("l1x.accesses") > 0        # fusion tenant ran
    expected = set(build_workload("adpcm", "tiny").function_names()) | \
        set(build_workload("filter", "tiny").function_names())
    assert set(result.function_names()) == expected


def test_shared_tenant_beside_fusion_dx_tenant():
    result = run_mt_strategies(["fft", "adpcm"],
                               ("fusion-dx", "shared"))
    assert result.accel_cycles > 0
    assert result.stat("l0x.axc0.lines_forwarded") > 0  # dx forwards
    assert result.stat("mesi.fwd_to_tile") > 0  # shared tenant recalls


def test_mixed_tenants_keep_pid_isolation():
    """The PID-conflict counter still fires for the tile-resident
    tenant when the other tenant lives off-tile."""
    result = run_mt_strategies(["adpcm", "filter"],
                               ("fusion", "fusion:lease=200"))
    assert result.stat("l1x.pid_conflicts") > 0
