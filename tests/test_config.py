"""Configuration validation and presets (repro.common.config)."""

import pytest

from repro.common.config import (
    CacheConfig,
    ConfigError,
    ScratchpadConfig,
    WritePolicy,
    large_config,
    small_config,
)
from repro.common.units import KB


def test_small_preset_matches_table2():
    config = small_config()
    assert config.tile.l0x.size_bytes == 4 * KB
    assert config.tile.l1x.size_bytes == 64 * KB
    assert config.tile.l1x.banks == 16
    assert config.tile.scratchpad.size_bytes == 4 * KB
    assert config.host.l1.size_bytes == 64 * KB
    assert config.host.l2_size_bytes == 4 * KB * KB
    assert config.link.axc_l1x_pj_per_byte == pytest.approx(0.4)
    assert config.link.l1x_l2_pj_per_byte == pytest.approx(6.0)
    assert config.link.l0x_l0x_pj_per_byte == pytest.approx(0.1)


def test_large_preset_doubles_l0x_quadruples_l1x():
    small = small_config()
    large = large_config()
    assert large.tile.l0x.size_bytes == 2 * small.tile.l0x.size_bytes
    assert large.tile.l1x.size_bytes == 4 * small.tile.l1x.size_bytes
    # +2 cycles L1X latency, per Section 5.5.
    assert large.tile.l1x.hit_latency == small.tile.l1x.hit_latency + 2


def test_cache_geometry_derivations():
    cache = CacheConfig(size_bytes=4 * KB, ways=4)
    assert cache.num_sets == 16
    assert cache.num_lines == 64
    assert cache.set_index(0) == 0
    assert cache.set_index(64) == 1
    assert cache.set_index(64 * 16) == 0  # wraps around


def test_cache_rejects_non_power_of_two_sets():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=3 * KB, ways=4)


def test_cache_rejects_undersized():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=32, ways=1)


def test_cache_rejects_bad_latency():
    with pytest.raises(ConfigError):
        CacheConfig(size_bytes=4 * KB, ways=4, hit_latency=0)


def test_scratchpad_rejects_unaligned():
    with pytest.raises(ConfigError):
        ScratchpadConfig(size_bytes=100)


def test_scratchpad_block_count():
    assert ScratchpadConfig(size_bytes=4 * KB).num_blocks == 64


def test_with_l0x_write_policy_is_nondestructive():
    base = small_config()
    wt = base.with_l0x_write_policy(WritePolicy.WRITE_THROUGH)
    assert wt.tile.l0x.write_policy is WritePolicy.WRITE_THROUGH
    assert base.tile.l0x.write_policy is WritePolicy.WRITE_BACK
    # Everything else is unchanged.
    assert wt.tile.l1x == base.tile.l1x


def test_with_lease():
    config = small_config().with_lease(999)
    assert config.tile.default_lease == 999


def test_configs_are_hashable_for_memoisation():
    assert hash(small_config()) == hash(small_config())
    assert small_config() == small_config()
    assert small_config() != large_config()
