"""Integration: the four system designs end to end (repro.systems)."""

import pytest

from repro.common.config import small_config
from repro.sim.simulator import run
from repro.systems import SYSTEMS
from repro.workloads.registry import BENCHMARKS, build_workload

SYSTEM_NAMES = tuple(SYSTEMS)


@pytest.mark.parametrize("system", SYSTEM_NAMES)
@pytest.mark.parametrize("bench", BENCHMARKS)
def test_every_system_runs_every_benchmark(system, bench):
    result = run(system, bench, size="tiny")
    assert result.accel_cycles > 0
    assert result.total_cycles >= result.accel_cycles
    assert result.energy.total_pj > 0
    assert result.system == system
    assert result.benchmark == bench


@pytest.mark.parametrize("system", SYSTEM_NAMES)
def test_runs_are_deterministic(system):
    first = SYSTEMS[system](small_config(),
                            build_workload("adpcm", "tiny")).run()
    second = SYSTEMS[system](small_config(),
                             build_workload("adpcm", "tiny")).run()
    assert first.accel_cycles == second.accel_cycles
    assert first.energy.total_pj == pytest.approx(second.energy.total_pj)
    assert first.stats == second.stats


def _fresh(system, benchmark="adpcm", size="tiny"):
    return SYSTEMS[system](small_config(),
                           build_workload(benchmark, size)).run()


def test_scratch_uses_dma_and_no_tile_links():
    result = _fresh("SCRATCH")
    assert result.dma_kb > 0
    assert result.dma_count > 0
    assert result.stat("dma.windows") >= 1
    assert result.axc_link_msgs == 0
    assert result.stat("scratchpad.accesses") > 0


def test_scratch_dma_traffic_at_least_working_set():
    workload = build_workload("adpcm", "tiny")
    result = _fresh("SCRATCH")
    wset_kb = len(workload.working_set_blocks()) * 64 / 1024
    assert result.dma_kb >= wset_kb * 0.5  # write-first blocks skip DMA-in


def test_shared_crosses_switch_for_every_access():
    result = _fresh("SHARED")
    mem_ops = sum(v for k, v in result.stats.items()
                  if k.endswith(".mem_ops"))
    assert result.axc_link_msgs == mem_ops
    # Evictions/flushes add a few L1X array reads on top.
    assert mem_ops <= result.stat("l1x.accesses") <= mem_ops * 1.05


def test_fusion_l0x_filters_l1x():
    result = _fresh("FUSION")
    l0x_accesses = sum(v for k, v in result.stats.items()
                       if k.startswith("l0x.axc") and
                       k.endswith(".accesses"))
    assert l0x_accesses > 0
    assert result.stat("l1x.accesses") < l0x_accesses


def test_fusion_hit_miss_accounting():
    result = _fresh("FUSION")
    for axc in range(build_workload("adpcm", "tiny").num_axcs):
        prefix = "l0x.axc{}.".format(axc)
        accesses = result.stat(prefix + "accesses")
        hits = result.stat(prefix + "hits")
        misses = result.stat(prefix + "misses")
        fwd = result.stat(prefix + "forward_hits")
        assert hits + misses == accesses
        assert fwd <= hits


def test_fusion_translation_hardware_is_exercised():
    result = _fresh("FUSION")
    assert result.ax_tlb_lookups >= result.stat("l1x.misses")
    assert result.ax_rmap_lookups > 0  # host consume pulls outputs


def test_fusion_dx_forwards_lines():
    base = _fresh("FUSION", "fft")
    dx = _fresh("FUSION-Dx", "fft")
    assert dx.forwarded_lines > 0
    assert base.forwarded_lines == 0
    assert dx.stat("link.fwd.data_transfers") == dx.forwarded_lines
    # Forwarding removes writebacks relative to plain FUSION.
    wb = lambda r: sum(v for k, v in r.stats.items()
                       if k.startswith("l0x.axc") and
                       k.endswith(".writebacks"))
    assert wb(dx) < wb(base)


def test_per_function_attribution_covers_all_functions():
    result = _fresh("FUSION")
    workload = build_workload("adpcm", "tiny")
    assert set(result.function_names()) == set(workload.function_names())
    for name in result.function_names():
        assert result.invocation_cycles(name) > 0
        assert result.invocation_energy_pj(name) > 0


def test_energy_breakdown_excludes_host_produce_phase():
    result = _fresh("FUSION")
    # Total L2 energy includes the produce phase; the breakdown must be
    # strictly smaller.
    assert result.energy["l2"] < result.stat("l2.energy_pj")


def test_protocol_safety_nets_untouched():
    for system in ("FUSION", "FUSION-Dx"):
        result = _fresh(system, "fft")
        assert result.stat("l1x.late_writebacks") == 0
        assert result.stat("l0x.axc0.unclaimed_forwards", 0) == 0


def test_host_coherence_closes_the_loop():
    result = _fresh("FUSION")
    # The host consume phase pulls outputs out of the tile via
    # directory forwards — the Table 6 AX-RMAP traffic.
    assert result.stat("mesi.fwd_to_tile") > 0
    assert result.stat("l1x.fwd_evictions") > 0
