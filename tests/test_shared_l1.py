"""The SHARED baseline's L1X controller (repro.coherence.shared_l1)."""

from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, MemOp
from repro.coherence.mesi import HostMemorySystem
from repro.coherence.shared_l1 import SharedL1XController
from repro.interconnect.link import Link
from repro.mem.tlb import PageTable


def make_shared():
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    page_table = PageTable()
    l1x = SharedL1XController(config, mem, page_table, stats)
    l1x.axc_link = Link("axc_l1x", 0.4, stats)
    mem.tile_agent = l1x
    return l1x, mem, stats


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def test_every_access_crosses_the_switch():
    l1x, _, stats = make_shared()
    l1x.access(load(0x40), now=0)
    l1x.access(load(0x44), now=10)
    # One request message and one word response per access (Figure 6c).
    assert stats.get("link.axc_l1x.msgs") == 2
    assert stats.get("link.axc_l1x.data_transfers") == 2


def test_miss_then_hit_counters():
    l1x, _, stats = make_shared()
    l1x.access(load(0x40), now=0)
    l1x.access(load(0x44), now=10)
    assert stats.get("l1x.misses") == 1
    assert stats.get("l1x.hits") == 1


def test_hit_is_cheaper_than_miss():
    l1x, _, _ = make_shared()
    miss = l1x.access(load(0x40), now=0)
    hit = l1x.access(load(0x40), now=10)
    assert hit < miss


def test_store_marks_modified():
    l1x, _, stats = make_shared()
    l1x.access(store(0x40), now=0)
    pblock = l1x.cache.resident_blocks()[0]
    line = l1x.cache.lookup(pblock, touch=False)
    assert line.dirty and line.state == "M"
    assert stats.get("l1x.store_data.wt_data") == 1


def test_dirty_eviction_writes_back_to_host():
    l1x, mem, stats = make_shared()
    stride = 64 * 128  # same L1X set (64 kB, 8-way)
    for i in range(9):
        l1x.access(store(0x40 + i * stride), now=i)
    assert stats.get("l1x.evictions") == 1
    assert stats.get("mesi.recv.putx") == 1


def test_forwarded_request_probes_directly():
    l1x, mem, stats = make_shared()
    l1x.access(store(0x40), now=0)
    pblock = l1x.cache.resident_blocks()[0]
    stall, dirty = l1x.handle_forwarded_request(pblock, now=5,
                                                is_store=True)
    assert stall == 0          # no leases to wait for in SHARED
    assert dirty
    assert not l1x.cache.contains(pblock)


def test_forwarded_miss_tolerated():
    l1x, _, stats = make_shared()
    assert l1x.handle_forwarded_request(0x123000, 0, False) == (0, False)
    assert stats.get("l1x.fwd_misses") == 1


def test_flush_drains_dirty_lines():
    l1x, mem, stats = make_shared()
    l1x.access(store(0x40), now=0)
    l1x.access(store(0x80), now=1)
    l1x.flush(now=10)
    assert stats.get("l1x.flush_writebacks") == 2
    assert not l1x.cache.dirty_lines()


def test_host_coherence_roundtrip():
    """Host writes, AXC reads through SHARED, host reads back."""
    l1x, mem, stats = make_shared()
    paddr = l1x.page_table.translate(0x40)
    mem.host_store(paddr)
    l1x.access(load(0x40), now=0)
    assert stats.get("mesi.host_invalidations_for_tile") == 1
    mem.host_load(paddr, now=100)
    assert stats.get("mesi.sent.fwd_gets") == 1
