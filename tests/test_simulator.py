"""The simulation driver (repro.sim.simulator)."""

import pytest

from repro.common.config import ConfigError, small_config
from repro.sim.simulator import FIGURE6_SYSTEMS, clear_cache, run, run_all


def test_unknown_system_rejected():
    with pytest.raises(ConfigError, match="unknown system"):
        run("GPU", "adpcm", "tiny")


def test_default_config_is_small():
    result = run("FUSION", "adpcm", "tiny")
    assert result.config_name == "small"


def test_results_are_memoised():
    first = run("FUSION", "adpcm", "tiny")
    second = run("FUSION", "adpcm", "tiny")
    assert first is second


def test_distinct_configs_are_distinct_cache_keys():
    base = run("FUSION", "adpcm", "tiny", small_config())
    leased = run("FUSION", "adpcm", "tiny",
                 small_config().with_lease(123))
    assert base is not leased


def test_clear_cache_forces_rerun():
    first = run("FUSION", "adpcm", "tiny")
    clear_cache()
    second = run("FUSION", "adpcm", "tiny")
    assert first is not second
    assert first.accel_cycles == second.accel_cycles  # deterministic


def test_run_all_covers_figure6_systems():
    results = run_all("adpcm", "tiny")
    assert set(results) == set(FIGURE6_SYSTEMS)
    for name, result in results.items():
        assert result.system == name
