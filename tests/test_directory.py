"""L2 coherence directory (repro.coherence.directory)."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.stats import StatsRegistry
from repro.coherence.directory import HOST, TILE, Directory, DirectoryEntry


def test_entry_starts_idle():
    entry = DirectoryEntry()
    assert entry.is_idle
    assert not entry.cached_by(HOST)


def test_add_sharer_and_owner():
    entry = DirectoryEntry()
    entry.add_sharer(HOST)
    assert entry.cached_by(HOST)
    entry.remove(HOST)
    entry.set_owner(TILE)
    assert entry.owner == TILE
    assert entry.cached_by(TILE)


def test_owner_excludes_other_sharers():
    entry = DirectoryEntry()
    entry.add_sharer(HOST)
    with pytest.raises(ProtocolError):
        entry.set_owner(TILE)


def test_sharer_while_owned_by_other_raises():
    entry = DirectoryEntry()
    entry.set_owner(TILE)
    with pytest.raises(ProtocolError):
        entry.add_sharer(HOST)


def test_owner_may_also_be_listed_sharer():
    entry = DirectoryEntry()
    entry.add_sharer(HOST)
    entry.set_owner(HOST)  # upgrade, legal
    assert entry.owner == HOST


def test_remove_clears_ownership():
    entry = DirectoryEntry()
    entry.set_owner(TILE)
    entry.remove(TILE)
    assert entry.is_idle


def test_invalid_agent_rejected():
    entry = DirectoryEntry()
    with pytest.raises(ProtocolError):
        entry.add_sharer("")
    with pytest.raises(ProtocolError):
        entry.add_sharer(None)


def test_extra_tile_agents_accepted():
    entry = DirectoryEntry()
    entry.set_owner("tile1")  # multi-tile systems register new names
    assert entry.cached_by("tile1")


def make_directory():
    return Directory(StatsRegistry())


def test_directory_creates_entries_on_demand():
    directory = make_directory()
    assert directory.lookup(0x40) is None
    entry = directory.entry(0x40)
    assert directory.lookup(0x40) is entry


def test_tile_filter():
    directory = make_directory()
    assert not directory.tile_caches(0x40)
    directory.entry(0x40).set_owner(TILE)
    assert directory.tile_caches(0x40)


def test_blocks_owned_by():
    directory = make_directory()
    directory.entry(0).set_owner(TILE)
    directory.entry(64).set_owner(HOST)
    assert directory.blocks_owned_by(TILE) == [0]


def test_drop():
    directory = make_directory()
    directory.entry(0)
    directory.drop(0)
    assert directory.lookup(0) is None
