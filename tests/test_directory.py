"""L2 coherence directory (repro.coherence.directory)."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.stats import StatsRegistry
from repro.coherence.directory import HOST, TILE, Directory, DirectoryEntry


def test_entry_starts_idle():
    entry = DirectoryEntry()
    assert entry.is_idle
    assert not entry.cached_by(HOST)


def test_add_sharer_and_owner():
    entry = DirectoryEntry()
    entry.add_sharer(HOST)
    assert entry.cached_by(HOST)
    entry.remove(HOST)
    entry.set_owner(TILE)
    assert entry.owner == TILE
    assert entry.cached_by(TILE)


def test_owner_excludes_other_sharers():
    entry = DirectoryEntry()
    entry.add_sharer(HOST)
    with pytest.raises(ProtocolError):
        entry.set_owner(TILE)


def test_sharer_while_owned_by_other_raises():
    entry = DirectoryEntry()
    entry.set_owner(TILE)
    with pytest.raises(ProtocolError):
        entry.add_sharer(HOST)


def test_owner_may_also_be_listed_sharer():
    entry = DirectoryEntry()
    entry.add_sharer(HOST)
    entry.set_owner(HOST)  # upgrade, legal
    assert entry.owner == HOST


def test_remove_clears_ownership():
    entry = DirectoryEntry()
    entry.set_owner(TILE)
    entry.remove(TILE)
    assert entry.is_idle


def test_invalid_agent_rejected():
    entry = DirectoryEntry()
    with pytest.raises(ProtocolError):
        entry.add_sharer("")
    with pytest.raises(ProtocolError):
        entry.add_sharer(None)


def test_extra_tile_agents_accepted():
    entry = DirectoryEntry()
    entry.set_owner("tile1")  # multi-tile systems register new names
    assert entry.cached_by("tile1")


def make_directory():
    return Directory(StatsRegistry())


def test_directory_creates_entries_on_demand():
    directory = make_directory()
    assert directory.lookup(0x40) is None
    entry = directory.entry(0x40)
    assert directory.lookup(0x40) is entry


def test_tile_filter():
    directory = make_directory()
    assert not directory.tile_caches(0x40)
    directory.entry(0x40).set_owner(TILE)
    assert directory.tile_caches(0x40)


def test_blocks_owned_by():
    directory = make_directory()
    directory.entry(0).set_owner(TILE)
    directory.entry(64).set_owner(HOST)
    assert directory.blocks_owned_by(TILE) == [0]


def test_drop():
    directory = make_directory()
    directory.entry(0)
    directory.drop(0)
    assert directory.lookup(0) is None


# -- edge cases through the host memory system --------------------------

def _tiny_mem():
    """Host memory system on the checker's tiny config: a 1 KiB L2 so a
    handful of host loads force real L2 evictions."""
    from repro.check.world import tiny_config
    from repro.coherence.mesi import HostMemorySystem
    stats = StatsRegistry()
    return HostMemorySystem(tiny_config(), stats), stats


def test_l2_eviction_recalls_live_tile_sharer():
    from tests.conftest import RecordingTileAgent
    mem, _ = _tiny_mem()
    agent = RecordingTileAgent(dirty=True)
    mem.tile_agent = agent
    block = 0x0
    mem.fetch_for_tile(block)
    assert mem.directory.entry(block).cached_by(TILE)
    # Churn the whole tiny L2 until the tile's block is evicted.
    addr = 0x1000
    while mem.l2.contains(block):
        mem.host_load(addr)
        addr += 64
    # Inclusion recall: the tile was asked to give the line up, its
    # dirty data travelled back, and the directory entry is gone.
    assert (block, 0, True) in [(b, n, s) for b, n, s in agent.requests]
    assert mem.directory.lookup(block) is None


def test_writeback_racing_a_forward_is_tolerated():
    from tests.conftest import RecordingTileAgent
    mem, _ = _tiny_mem()
    agent = RecordingTileAgent(dirty=True)
    mem.tile_agent = agent
    block = 0x0
    mem.fetch_for_tile(block)
    # A host store forwards into the tile: the directory drops the tile
    # and the host becomes owner.
    mem.host_store(block)
    assert agent.requests, "host store must forward into the tile"
    assert mem.directory.entry(block).owner == HOST
    # The tile's own writeback for the same line arrives late (it raced
    # the forward).  It must be absorbed, not tripped over - and must
    # not disturb the host's ownership.
    mem.tile_writeback(block, dirty=True)
    assert mem.directory.entry(block).owner == HOST


def test_regrant_after_self_downgrade():
    mem, _ = _tiny_mem()
    block = 0x40
    mem.fetch_for_tile(block)
    assert mem.directory.entry(block).owner == TILE
    # Self-downgrade: the tile gives the line up voluntarily.
    mem.tile_writeback(block, dirty=True)
    assert mem.directory.entry(block).is_idle
    # The host picks the block up in between.
    mem.host_load(block)
    assert mem.directory.entry(block).cached_by(HOST)
    # Re-granting the tile must displace the host copy cleanly.
    mem.fetch_for_tile(block)
    entry = mem.directory.entry(block)
    assert entry.owner == TILE
    assert not entry.cached_by(HOST)


def test_conflict_errors_carry_structured_context():
    directory = make_directory()
    entry = directory.entry(0x80)
    entry.set_owner(TILE)
    with pytest.raises(ProtocolError) as excinfo:
        entry.add_sharer(HOST)
    error = excinfo.value
    assert error.agent == HOST
    assert error.block == 0x80
    assert error.invariant == "single-owner"
    assert "block=0x80" in str(error)
    assert error.context == {"agent": HOST, "block": 0x80,
                             "invariant": "single-owner"}
