"""Structured error context (repro.common.errors)."""

import pickle

import pytest

from repro.common.errors import CoherenceError, ProtocolError, ReproError


def test_coherence_error_is_protocol_error():
    assert CoherenceError is ProtocolError
    assert issubclass(ProtocolError, ReproError)


def test_bare_message_still_works():
    error = ProtocolError("something broke")
    assert str(error) == "something broke"
    assert error.context == {}


def test_context_renders_in_str():
    error = ProtocolError("two live write epochs", agent="axc1",
                          block=0x40080, epoch=210, invariant="swmr")
    rendered = str(error)
    assert "two live write epochs" in rendered
    assert "agent=axc1" in rendered
    assert "block=0x40080" in rendered
    assert "epoch=210" in rendered
    assert "invariant=swmr" in rendered


def test_context_dict_skips_unset_fields():
    error = ProtocolError("partial", agent="l1x")
    assert error.context == {"agent": "l1x"}


def test_context_survives_pickling():
    """Exceptions cross the execution engine's worker-pool boundary;
    the keyword context must survive the round trip."""
    error = ProtocolError("msg", agent="tile", block=0x40,
                          invariant="exclusive-owner")
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is ProtocolError
    assert clone.message == "msg"
    assert clone.context == error.context


def test_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise ProtocolError("x", agent="a")
