"""Virtual memory: page table and AX-TLB (repro.mem.tlb)."""

import pytest

from repro.common.errors import TranslationError
from repro.common.stats import StatsRegistry
from repro.mem.tlb import PAGE_SIZE, WALK_LATENCY, AxTlb, PageTable


def test_translate_preserves_offset():
    pt = PageTable()
    paddr = pt.translate(0x1234)
    assert paddr % PAGE_SIZE == 0x234


def test_translate_is_stable():
    pt = PageTable()
    assert pt.translate(0x5000) == pt.translate(0x5000)


def test_distinct_pages_map_distinct_frames():
    pt = PageTable()
    assert (pt.translate(0x1000) // PAGE_SIZE
            != pt.translate(0x2000) // PAGE_SIZE)


def test_reverse_roundtrip():
    pt = PageTable()
    paddr = pt.translate(0xABC123)
    assert pt.reverse(paddr) == 0xABC123


def test_reverse_unmapped_raises():
    pt = PageTable()
    with pytest.raises(TranslationError):
        pt.reverse(0xDEAD000)


def test_pids_do_not_alias():
    a = PageTable(pid=0)
    b = PageTable(pid=1)
    assert a.translate(0x1000) != b.translate(0x1000)


def make_tlb(entries=2):
    stats = StatsRegistry()
    return AxTlb(PageTable(), entries, stats), stats


def test_tlb_miss_then_hit_latency():
    tlb, stats = make_tlb()
    _, miss_latency = tlb.translate(0x1000)
    _, hit_latency = tlb.translate(0x1004)
    assert miss_latency == 1 + WALK_LATENCY
    assert hit_latency == 1
    assert stats.get("ax_tlb.misses") == 1
    assert stats.get("ax_tlb.hits") == 1


def test_tlb_translation_matches_page_table():
    pt = PageTable()
    tlb = AxTlb(pt, 4, StatsRegistry())
    paddr, _ = tlb.translate(0x1238)
    assert paddr == pt.translate(0x1238)


def test_tlb_lru_capacity():
    tlb, stats = make_tlb(entries=2)
    tlb.translate(0x1000)   # miss
    tlb.translate(0x2000)   # miss
    tlb.translate(0x1000)   # hit, refreshes
    tlb.translate(0x3000)   # miss, evicts 0x2000
    _, latency = tlb.translate(0x2000)
    assert latency == 1 + WALK_LATENCY
    assert stats.get("ax_tlb.lookups") == 5


def test_tlb_counts_lookup_energy():
    tlb, stats = make_tlb()
    tlb.translate(0)
    assert stats.get("ax_tlb.energy_pj") > 0
