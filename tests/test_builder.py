"""Trace builder and address space (repro.workloads.builder)."""

import pytest

from repro.common.errors import TraceError
from repro.common.types import AccessType, ComputeOp, MemOp
from repro.workloads.builder import AddressSpace, TraceBuilder


def make_builder():
    space = AddressSpace()
    return space, TraceBuilder("bench", space)


def test_alloc_assigns_disjoint_ranges():
    space = AddressSpace()
    a = space.alloc("a", 100, elem_size=4)
    b = space.alloc("b", 100, elem_size=4)
    assert a.base + a.size_bytes <= b.base


def test_alloc_staggers_array_bases():
    """Equal-size arrays must not land in the same cache set (the
    page-aligned-streams pathology the allocator gap avoids)."""
    space = AddressSpace()
    a = space.alloc("a", 1024, elem_size=4)
    b = space.alloc("b", 1024, elem_size=4)
    sets = 16  # 4 kB 4-way L0X
    assert (a.base // 64) % sets != (b.base // 64) % sets


def test_alloc_duplicate_name_rejected():
    space = AddressSpace()
    space.alloc("a", 8)
    with pytest.raises(TraceError):
        space.alloc("a", 8)


def test_array_addressing():
    space = AddressSpace()
    arr = space.alloc("a", 10, elem_size=2)
    assert arr.addr(3) == arr.base + 6
    assert len(arr) == 10


def test_array_bounds_checked():
    space = AddressSpace()
    arr = space.alloc("a", 10)
    with pytest.raises(TraceError):
        arr.addr(10)
    with pytest.raises(TraceError):
        arr.addr(-1)


def test_load_store_emission():
    space, tb = make_builder()
    arr = space.alloc("a", 8)
    tb.begin_function("f")
    tb.load(arr, 0)
    tb.store(arr, 1)
    trace = tb.end_function()
    assert trace.ops[0].kind is AccessType.LOAD
    assert trace.ops[1].kind is AccessType.STORE
    assert trace.ops[1].addr == arr.addr(1)
    assert trace.ops[0].array == "a"


def test_compute_flushes_before_store_not_load():
    space, tb = make_builder()
    arr = space.alloc("a", 8)
    tb.begin_function("f")
    tb.load(arr, 0)
    tb.compute(int_ops=2)
    tb.load(arr, 1)          # pending compute must NOT flush here
    tb.compute(int_ops=3)
    tb.store(arr, 2)         # ... but must flush here, merged
    trace = tb.end_function()
    kinds = [type(op).__name__ for op in trace.ops]
    assert kinds == ["MemOp", "MemOp", "ComputeOp", "MemOp"]
    assert trace.ops[2].int_ops == 5


def test_barrier_flushes_explicitly():
    space, tb = make_builder()
    tb.begin_function("f")
    tb.compute(fp_ops=1)
    tb.barrier()
    trace = tb.end_function()
    assert isinstance(trace.ops[0], ComputeOp)


def test_end_function_flushes_tail_compute():
    space, tb = make_builder()
    tb.begin_function("f")
    tb.compute(int_ops=7)
    trace = tb.end_function()
    assert trace.ops[-1].int_ops == 7


def test_function_scoping_errors():
    space, tb = make_builder()
    arr = space.alloc("a", 4)
    with pytest.raises(TraceError):
        tb.load(arr, 0)           # outside a function
    with pytest.raises(TraceError):
        tb.end_function()
    tb.begin_function("f")
    with pytest.raises(TraceError):
        tb.begin_function("g")    # nested


def test_context_manager_sugar():
    space, tb = make_builder()
    arr = space.alloc("a", 4)
    with tb.function("f", lease=321):
        tb.load(arr, 0)
    workload = tb.workload()
    assert workload.invocations[0].name == "f"
    assert workload.invocations[0].lease_time == 321


def test_workload_records_array_ranges():
    space, tb = make_builder()
    arr = space.alloc("input", 16)
    with tb.function("f"):
        tb.load(arr, 0)
    workload = tb.workload(host_inputs=("input",),
                           host_outputs=("input",))
    assert workload.array_ranges["input"] == (arr.base, arr.size_bytes)
    assert workload.host_input_arrays == [(arr.base, arr.size_bytes)]


def test_workload_with_open_function_rejected():
    space, tb = make_builder()
    tb.begin_function("f")
    with pytest.raises(TraceError):
        tb.workload()
