"""Host directory-MESI engine (repro.coherence.mesi)."""

import pytest

from repro.coherence.directory import HOST, TILE

from conftest import RecordingTileAgent, make_mem_system

L2_SET_STRIDE = 64 * 4096  # same-L2-set stride for the 4 MB 16-way LLC


def test_host_load_miss_then_hit():
    mem, stats = make_mem_system()
    mem.host_load(0x40)
    assert stats.get("host_l1.misses") == 1
    assert stats.get("dram.accesses") == 1  # cold L2 miss
    mem.host_load(0x40)
    assert stats.get("host_l1.hits") == 1
    assert stats.get("dram.accesses") == 1  # no new DRAM traffic


def test_host_store_sets_dirty_and_ownership():
    mem, _ = make_mem_system()
    mem.host_store(0x40)
    line = mem.l1.lookup(0x40, touch=False)
    assert line.dirty
    assert line.state == "M"
    assert mem.directory.entry(0x40).owner == HOST


def test_host_store_hit_after_load_upgrades():
    mem, stats = make_mem_system()
    mem.host_load(0x40)
    mem.host_store(0x40)
    assert mem.directory.entry(0x40).cached_by(HOST)
    line = mem.l1.lookup(0x40, touch=False)
    assert line.dirty and line.state == "M"


def test_fetch_for_tile_grants_exclusive():
    mem, stats = make_mem_system()
    mem.fetch_for_tile(0x40)
    entry = mem.directory.entry(0x40)
    assert entry.owner == TILE
    assert stats.get("link.l1x_l2.data_transfers") == 1


def test_fetch_for_tile_pulls_dirty_host_copy():
    mem, stats = make_mem_system()
    mem.host_store(0x40)
    mem.fetch_for_tile(0x40)
    # Exclusivity between host tile and accelerator tile (Section 3.2).
    assert mem.l1.lookup(0x40, touch=False) is None
    assert stats.get("mesi.host_invalidations_for_tile") == 1
    l2_line = mem.l2.lookup(0x40, touch=False)
    assert l2_line.dirty  # host's data landed in the L2


def test_tile_writeback_dirty_updates_l2():
    mem, stats = make_mem_system()
    mem.fetch_for_tile(0x40)
    mem.tile_writeback(0x40, dirty=True)
    assert mem.directory.entry(0x40).is_idle
    assert mem.l2.lookup(0x40, touch=False).dirty
    assert stats.get("mesi.recv.putx") == 1


def test_tile_writeback_clean_is_control_only():
    mem, stats = make_mem_system()
    mem.fetch_for_tile(0x40)
    before = stats.get("link.l1x_l2.data_transfers")
    mem.tile_writeback(0x40, dirty=False)
    assert stats.get("mesi.recv.puts") == 1
    assert stats.get("link.l1x_l2.data_transfers") == before


def test_host_load_forwards_to_owning_tile():
    mem, stats = make_mem_system()
    agent = RecordingTileAgent(dirty=True)
    mem.tile_agent = agent
    mem.fetch_for_tile(0x40)
    mem.host_load(0x40)
    assert len(agent.requests) == 1
    pblock, _, is_store = agent.requests[0]
    assert pblock == 0x40
    assert not is_store
    assert stats.get("mesi.sent.fwd_gets") == 1
    # Tile gave the line up; host now shares it.
    assert not mem.directory.entry(0x40).cached_by(TILE)
    assert mem.directory.entry(0x40).cached_by(HOST)


def test_host_store_forwards_getx():
    mem, stats = make_mem_system()
    agent = RecordingTileAgent(dirty=False)
    mem.tile_agent = agent
    mem.fetch_for_tile(0x40)
    mem.host_store(0x40)
    assert agent.requests[0][2] is True
    assert stats.get("mesi.sent.fwd_getx") == 1
    assert mem.directory.entry(0x40).owner == HOST


def test_forward_stall_propagates_to_latency():
    mem, _ = make_mem_system()
    mem.tile_agent = RecordingTileAgent(dirty=False, stall=500)
    mem.fetch_for_tile(0x40)
    latency = mem.host_load(0x40, now=0)
    assert latency >= 500


def test_dma_read_downgrades_dirty_host_copy():
    mem, stats = make_mem_system()
    mem.host_store(0x40)
    mem.dma_read(0x40)
    line = mem.l1.lookup(0x40, touch=False)
    assert line is not None and not line.dirty and line.state == "S"
    assert stats.get("mesi.dma_host_writebacks") == 1
    # DMA is not a caching agent: directory still names only the host.
    assert not mem.directory.entry(0x40).cached_by(TILE)


def test_dma_write_invalidates_host_copy():
    mem, stats = make_mem_system()
    mem.host_load(0x40)
    mem.dma_write(0x40)
    assert mem.l1.lookup(0x40, touch=False) is None
    assert stats.get("mesi.dma_host_invalidations") == 1
    assert mem.l2.lookup(0x40, touch=False).dirty


def test_inclusion_recall_on_l2_eviction():
    mem, stats = make_mem_system()
    agent = RecordingTileAgent(dirty=True)
    mem.tile_agent = agent
    mem.fetch_for_tile(0x40)  # tile owns block in L2 set 1
    # Fill the same L2 set with host loads until the tile's line evicts.
    for i in range(1, 20):
        mem.host_load(0x40 + i * L2_SET_STRIDE)
    assert stats.get("mesi.sent.recall") >= 1
    assert len(agent.requests) >= 1
    assert not mem.l2.contains(0x40)
    assert mem.directory.lookup(0x40) is None


def test_l2_dirty_eviction_writes_dram():
    mem, stats = make_mem_system()
    mem.dma_write(0x40)  # dirty line in L2, no sharers
    for i in range(1, 20):
        mem.host_load(0x40 + i * L2_SET_STRIDE)
    assert stats.get("l2.dirty_evictions") >= 1
    assert stats.get("dram.writes") >= 1


def test_host_dirty_eviction_reaches_l2():
    mem, stats = make_mem_system()
    l1_stride = 64 * 256  # same host-L1 set (64 kB, 4-way)
    for i in range(6):
        mem.host_store(0x40 + i * l1_stride)
    assert stats.get("host_l1.dirty_evictions") >= 1
