"""CoherenceStrategy extraction (repro.coherence.strategy).

The four legacy systems are now thin presets over per-invocation
strategy objects; these tests pin that the extraction is exact — the
POLICY system's static selector produces RunResults bit-identical to
the legacy classes (everything but the system name) — and that the
strategy key grammar round-trips.
"""

import dataclasses

import pytest

from repro.coherence.strategy import (FusionLeaseStrategy,
                                      ScratchpadDmaStrategy,
                                      SharedL1XStrategy, make_strategy)
from repro.common.config import small_config
from repro.common.errors import ConfigError
from repro.systems import SYSTEMS
from repro.workloads.registry import build_workload

STRATEGY_OF = {
    "SCRATCH": "scratch",
    "SHARED": "shared",
    "FUSION": "fusion",
    "FUSION-Dx": "fusion-dx",
}


# -- key grammar -------------------------------------------------------------

def test_make_strategy_families():
    assert isinstance(make_strategy("scratch"), ScratchpadDmaStrategy)
    assert isinstance(make_strategy("shared"), SharedL1XStrategy)
    fusion = make_strategy("fusion")
    assert isinstance(fusion, FusionLeaseStrategy)
    assert fusion.lease is None and not fusion.forwarding
    dx = make_strategy("fusion-dx")
    assert dx.forwarding and dx.lease is None


def test_make_strategy_lease_option():
    strategy = make_strategy("fusion:lease=250")
    assert strategy.lease == 250
    assert make_strategy("fusion-dx:lease=1000").lease == 1000


def test_strategy_key_round_trips():
    for key in ("scratch", "shared", "fusion", "fusion-dx",
                "fusion:lease=250", "fusion-dx:lease=40"):
        strategy = make_strategy(key)
        assert strategy.key == key
        assert make_strategy(strategy) is strategy
        assert make_strategy(strategy.key) == strategy


def test_make_strategy_rejects_garbage():
    with pytest.raises(ConfigError, match="unknown coherence strategy"):
        make_strategy("mesi")
    with pytest.raises(ConfigError, match="takes no lease"):
        make_strategy("scratch:lease=5")
    with pytest.raises(ConfigError, match="non-integer lease"):
        make_strategy("fusion:lease=soon")
    with pytest.raises(ConfigError, match="unknown strategy option"):
        make_strategy("fusion:banks=4")
    with pytest.raises(ConfigError, match="negative lease"):
        FusionLeaseStrategy(lease=-1)


# -- preset equivalence ------------------------------------------------------

def _policy_static(key, bench, config):
    workload = build_workload(bench, "tiny")
    return SYSTEMS["POLICY"](
        config.with_policy(selector="static", static_strategy=key),
        workload).run()


@pytest.mark.parametrize("system", sorted(STRATEGY_OF))
@pytest.mark.parametrize("bench", ("fft", "susan"))
def test_static_selector_matches_legacy_system(system, bench):
    """The static selector is the legacy system, bit for bit: same
    cycles, same energy, same complete stats dict — only the reported
    system name differs."""
    config = small_config()
    legacy = SYSTEMS[system](config, build_workload(bench,
                                                    "tiny")).run()
    policy = _policy_static(STRATEGY_OF[system], bench, config)
    assert policy.system == "POLICY"
    assert dataclasses.replace(policy, system=legacy.system) == legacy


def test_lease_variant_matches_lease_override_config():
    """``fusion:lease=N`` pins the invocation-boundary lease exactly as
    the legacy per-system lease_override ablation did."""
    config = small_config()
    legacy = SYSTEMS["FUSION"](config.with_lease(125),
                               build_workload("filter", "tiny")).run()
    policy = _policy_static("fusion:lease=125", "filter", config)
    assert policy.accel_cycles == legacy.accel_cycles
    assert policy.stat("l1x.misses") == legacy.stat("l1x.misses")


def test_preset_mirrors_legacy_attributes():
    """Replay adapters and subclasses reach into the legacy attribute
    names; the presets must keep exposing them."""
    config = small_config()
    scratch = SYSTEMS["SCRATCH"](config, build_workload("fft", "tiny"))
    assert len(scratch.scratchpads) == len(scratch.cores)
    assert scratch._capacity >= 1
    shared = SYSTEMS["SHARED"](config, build_workload("fft", "tiny"))
    assert shared.l1x is shared._bound.l1x
    fusion = SYSTEMS["FUSION"](config, build_workload("fft", "tiny"))
    assert fusion.tile is fusion._bound.tile
    assert fusion._forward_plan_for(0) is None
    dx = SYSTEMS["FUSION-Dx"](config, build_workload("fft", "tiny"))
    assert any(dx._forward_plan_for(i) is not None for i in range(
        len(dx.workload.invocations)))


def test_binder_shares_one_bound_per_family():
    from repro.coherence.strategy import StrategyBinder, bind_context
    config = small_config()
    system = SYSTEMS["POLICY"](config, build_workload("fft", "tiny"))
    binder = StrategyBinder(bind_context(system))
    short = binder.bind(make_strategy("fusion:lease=10"))
    long = binder.bind(make_strategy("fusion:lease=4000"))
    assert short is long                      # one tile, two leases
    assert binder.bind(make_strategy("scratch")) is not short
    assert set(binder.bound_families) == {"fusion", "scratch"}


def test_binder_names_extra_cache_agents_distinctly():
    from repro.coherence.strategy import StrategyBinder, bind_context
    system = SYSTEMS["POLICY"](small_config(),
                               build_workload("fft", "tiny"))
    binder = StrategyBinder(bind_context(system))
    fusion = binder.bind(make_strategy("fusion"))
    shared = binder.bind(make_strategy("shared"))
    assert fusion.tile.l1x.agent_name == "tile"
    assert shared.l1x.agent_name == "tile2"
    assert set(system.host_mem.tile_agents) == {"tile", "tile2"}
