"""The FUSION accelerator tile (repro.accel.tile)."""

from repro.accel.tile import AcceleratorTile
from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, FunctionTrace, MemOp
from repro.coherence.mesi import HostMemorySystem
from repro.mem.tlb import PageTable


def make_tile(num_axcs=2):
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    tile = AcceleratorTile(config, mem, PageTable(), num_axcs, stats)
    return tile, stats


def trace(ops, lease=500):
    return FunctionTrace(name="f", benchmark="b", ops=ops,
                         lease_time=lease)


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def test_tile_registers_as_mesi_agent():
    tile, _ = make_tile()
    assert tile.l1x.host.tile_agent is tile.l1x


def test_run_invocation_advances_time_and_flushes():
    tile, stats = make_tile()
    end = tile.run_invocation(0, trace([store(0x40), load(0x80)]), 0,
                              mlp=2)
    assert end > 0
    # The dirty store was flushed at the end.
    assert stats.get("l1x.l0x_writebacks") == 1
    assert not tile.l0xs[0].cache.dirty_lines()


def test_invocations_share_the_l1x():
    tile, stats = make_tile()
    end = tile.run_invocation(0, trace([store(0x40)]), 0, mlp=1)
    tile.run_invocation(1, trace([load(0x40)]), end, mlp=1)
    # AXC-1 found the data inside the tile: one host fetch total.
    assert stats.get("l1x.misses") == 1


def test_forward_plan_routes_dirty_lines():
    tile, stats = make_tile()
    plan = [(0x40, 1)]
    end = tile.run_invocation(0, trace([store(0x40), store(0x80)]), 0,
                              mlp=1, forward_plan=plan)
    assert stats.get("l0x.axc0.lines_forwarded") == 1
    assert stats.get("l0x.axc0.writebacks") == 1  # the unplanned block
    tile.run_invocation(1, trace([load(0x40)]), end, mlp=1)
    assert stats.get("l0x.axc1.forward_hits") == 1


def test_forward_plan_ignores_self_forwards():
    tile, stats = make_tile()
    tile.run_invocation(0, trace([store(0x40)]), 0, mlp=1,
                        forward_plan=[(0x40, 0)])
    assert stats.get("l0x.axc0.lines_forwarded") == 0
    assert stats.get("l0x.axc0.writebacks") == 1


def test_hook_removed_after_invocation():
    tile, _ = make_tile()
    tile.run_invocation(0, trace([store(0x40)]), 0, mlp=1,
                        forward_plan=[(0x40, 1)])
    assert tile.l0xs[0].forward_hook is None


def test_default_lease_fallback():
    tile, _ = make_tile()
    no_lease = FunctionTrace(name="f", benchmark="b",
                             ops=[load(0x40)], lease_time=0)
    tile.run_invocation(0, no_lease, 0, mlp=1)
    line = tile.l0xs[0].cache.lookup(0x40, touch=False)
    assert line.lease is not None and line.lease > 0
