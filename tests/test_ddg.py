"""Dependence-graph analysis (repro.accel.ddg)."""

import pytest

from repro.accel.ddg import MAX_PIPELINE_MLP, analyze, build_ddg
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def trace(ops):
    return FunctionTrace(name="f", benchmark="b", ops=ops)


def test_op_mix_counts():
    metrics = analyze(trace([
        load(0), load(64), ComputeOp(int_ops=2, fp_ops=1), store(128)]))
    assert metrics.loads == 2
    assert metrics.stores == 1
    assert metrics.int_ops == 2
    assert metrics.fp_ops == 1
    assert metrics.total_ops == 6


def test_mix_percent_sums_to_100():
    metrics = analyze(trace([
        load(0), ComputeOp(int_ops=3), store(64)]))
    assert sum(metrics.mix_percent()) == pytest.approx(100.0)


def test_parallel_loads_share_a_level():
    nodes = build_ddg(trace([load(0), load(64), ComputeOp(int_ops=1)]))
    assert nodes[0].level == nodes[1].level
    assert nodes[2].level == nodes[0].level + 1


def test_memory_dependence_serialises():
    nodes = build_ddg(trace([store(0), load(0)]))
    assert nodes[1].level == nodes[0].level + 1


def test_independent_blocks_do_not_serialise():
    nodes = build_ddg(trace([store(0), load(64)]))
    assert nodes[1].level == nodes[0].level


def test_compute_spine_orders_iterations():
    # load, compute, load, compute: the second load depends on the
    # first compute (address generation / loop spine).
    nodes = build_ddg(trace([
        load(0), ComputeOp(int_ops=1), load(64), ComputeOp(int_ops=1)]))
    assert nodes[2].level > nodes[1].level


def test_mlp_two_loads_per_level():
    metrics = analyze(trace([
        load(0), load(64), ComputeOp(int_ops=1), store(128),
        load(192), load(256), ComputeOp(int_ops=1), store(320),
    ]))
    # Per iteration: 2 loads in one level, 1 store in another.
    assert 1.0 <= metrics.mlp <= 2.0


def test_pipe_mlp_counts_mem_ops_per_chunk():
    metrics = analyze(trace([
        load(0), load(64), load(128), ComputeOp(int_ops=1), store(192)]))
    assert metrics.pipe_mlp == pytest.approx(4.0)


def test_pipe_mlp_is_capped():
    ops = [load(i * 64) for i in range(32)] + [ComputeOp(int_ops=1)]
    metrics = analyze(trace(ops))
    assert metrics.pipe_mlp == MAX_PIPELINE_MLP


def test_empty_trace():
    metrics = analyze(trace([]))
    assert metrics.total_ops == 0
    assert metrics.mix_percent() == (0.0, 0.0, 0.0, 0.0)
    assert metrics.mlp == 1.0
