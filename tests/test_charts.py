"""Terminal charts (repro.sim.charts)."""

from repro.sim.charts import (
    STACK_GLYPHS,
    bar_chart,
    figure6a_chart,
    hbar,
    stacked_bar,
    stacked_chart,
)
from repro.sim.results import FailedResult
from repro.sim.simulator import run


def test_hbar_scales():
    assert hbar(5, 10, width=10) == "#####"
    assert hbar(10, 10, width=10) == "#" * 10
    assert hbar(0, 10, width=10) == ""
    assert hbar(20, 10, width=10) == "#" * 10  # clamped


def test_hbar_zero_scale():
    assert hbar(5, 0) == ""


def test_stacked_bar_orders_components():
    bar = stacked_bar({"local": 1.0, "l2": 1.0}, scale=2.0, width=10)
    assert bar == "#####%%%%%"


def test_stacked_bar_width_bounded():
    components = {key: 1.0 for key, _ in STACK_GLYPHS}
    bar = stacked_bar(components, scale=len(STACK_GLYPHS), width=20)
    assert len(bar) == 20


def test_bar_chart_lines():
    chart = bar_chart([("a", 1.0), ("bb", 2.0)], width=10)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") == 10  # the max bar is full width
    assert lines[0].count("#") == 5


def test_bar_chart_empty():
    assert bar_chart([]) == ""


def test_stacked_chart_has_legend():
    chart = stacked_chart([("a", {"local": 2.0})])
    assert "legend:" in chart
    assert "#=local" in chart


def test_figure6a_chart_renders_real_results():
    results = {"ADPCM": {
        system: run(system, "adpcm", "tiny")
        for system in ("SCRATCH", "SHARED", "FUSION")}}
    chart = figure6a_chart(results)
    assert "ADPCM" in chart
    assert "SCRATCH" in chart and "FUSION" in chart
    # The SCRATCH bar is normalised to 1.0.
    scratch_line = [line for line in chart.splitlines()
                    if "SCRATCH" in line][0]
    assert " 1.00 " in scratch_line


def test_figure6a_chart_failed_system_renders_row():
    results = {"ADPCM": {
        "SCRATCH": run("SCRATCH", "adpcm", "tiny"),
        "FUSION": FailedResult("FUSION", "adpcm", "tiny",
                               error="boom")}}
    chart = figure6a_chart(results)
    assert "FAILED: boom" in chart
    # The healthy baseline still renders normally.
    scratch_line = [line for line in chart.splitlines()
                    if "SCRATCH" in line][0]
    assert " 1.00 " in scratch_line


def test_figure6a_chart_survives_failed_scratch_baseline():
    results = {"ADPCM": {
        "SCRATCH": FailedResult("SCRATCH", "adpcm", "tiny",
                                error="dead"),
        "FUSION": run("FUSION", "adpcm", "tiny")}}
    chart = figure6a_chart(results)
    assert "FAILED: dead" in chart
    # FUSION falls back to unnormalised pJ totals instead of dying.
    fusion_line = [line for line in chart.splitlines()
                   if "FUSION" in line][0]
    assert "|" in fusion_line
