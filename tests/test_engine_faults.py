"""Fault injection and engine recovery paths.

Everything here drives :mod:`repro.sim.engine` through
``REPRO_FAULT_SPEC`` — deterministic worker crashes, hangs and cache
corruption — and asserts the batch either converges to the exact
fault-free results or degrades into structured :class:`FailedResult`
holes, never into a dead process or a wrong number.
"""

import json

import pytest

from repro.common.errors import ConfigError, RunTimeout
from repro.sim import faults
from repro.sim.engine import (
    CACHE_SCHEMA_VERSION,
    DiskCache,
    EngineJournal,
    ExecutionEngine,
    RunRequest,
)
from repro.sim.results import FailedResult, RunResult


@pytest.fixture
def engine(tmp_path):
    return ExecutionEngine(cache=DiskCache(tmp_path / "cache"))


@pytest.fixture
def no_backoff(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")


@pytest.fixture
def enable_cache(monkeypatch):
    """Tests about cache behaviour must win over a REPRO_NO_CACHE=1
    environment (the CI fault-smoke job sets it globally)."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)


def _grid(benchmarks=("adpcm", "fft"), size="tiny"):
    return [RunRequest(system, benchmark, size)
            for system in ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx")
            for benchmark in benchmarks]


# -- REPRO_FAULT_SPEC parsing ----------------------------------------------

def test_fault_spec_parses_all_clauses(monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULT_SPEC",
        "crash:every=7, hang:key=FUSION:adpcm:tiny, corrupt-cache:rate=0.25")
    plan = faults.fault_plan()
    assert plan.crash_every == 7
    # The hang key value itself contains ":" — only the first ":" of a
    # clause separates the kind from its parameter.
    assert plan.hang_key == "FUSION:adpcm:tiny"
    assert plan.corrupt_rate == 0.25
    assert plan


def test_fault_spec_defaults_to_no_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    assert not faults.fault_plan()
    monkeypatch.setenv("REPRO_FAULT_SPEC", "  ")
    assert not faults.fault_plan()


@pytest.mark.parametrize("spec", [
    "explode:every=2",              # unknown kind
    "crash:every=zero",             # non-integer
    "crash:every=0",                # < 1
    "hang",                         # missing key=
    "corrupt-cache:rate=lots",      # non-float
    "corrupt-cache:rate=1.5",       # out of [0, 1]
])
def test_fault_spec_rejects_garbage(monkeypatch, spec):
    monkeypatch.setenv("REPRO_FAULT_SPEC", spec)
    with pytest.raises(ConfigError):
        faults.fault_plan()


def test_request_key_format():
    assert faults.request_key(RunRequest("FUSION", "adpcm", "tiny")) \
        == "FUSION:adpcm:tiny"


def test_should_corrupt_is_deterministic_and_rate_bounded(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "corrupt-cache:rate=1")
    assert faults.should_corrupt("abc.pkl")
    monkeypatch.setenv("REPRO_FAULT_SPEC", "corrupt-cache:rate=0.5")
    first = [faults.should_corrupt("entry-%d.pkl" % i) for i in range(64)]
    again = [faults.should_corrupt("entry-%d.pkl" % i) for i in range(64)]
    assert first == again                   # same names, same verdicts
    assert any(first) and not all(first)    # a fraction, not all-or-none


# -- worker-crash recovery -------------------------------------------------

def test_crash_recovery_converges_to_clean_results(
        tmp_path, monkeypatch, no_backoff):
    grid = _grid()
    clean = ExecutionEngine(
        jobs=1, cache=DiskCache(tmp_path / "clean")).run_batch(grid)

    monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:every=3")
    engine = ExecutionEngine(jobs=2, cache=DiskCache(tmp_path / "f"))
    faulted = engine.run_batch(grid)

    assert faulted == clean
    snap = engine.telemetry.snapshot()
    assert snap["retries"] > 0
    assert snap["pool_respawns"] >= 1
    assert snap["failed_points"] == 0
    events = [event["event"] for event in engine.journal.tail(100)]
    assert "worker_crash" in events
    assert "pool_respawn" in events


def test_exhausted_retries_degrade_to_serial_fallback(
        tmp_path, monkeypatch, no_backoff):
    grid = _grid(benchmarks=("adpcm",))
    clean = ExecutionEngine(
        jobs=1, cache=DiskCache(tmp_path / "clean")).run_batch(grid)

    # Every worker execution crashes, so the pool can never make
    # progress; with a zero retry budget the engine must finish the
    # whole batch in-process (where faults never fire).
    monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:every=1")
    engine = ExecutionEngine(
        jobs=2, retries=0, cache=DiskCache(tmp_path / "f"))
    faulted = engine.run_batch(grid)

    assert faulted == clean
    snap = engine.telemetry.snapshot()
    assert snap["serial_fallbacks"] == len(grid)
    assert snap["failed_points"] == 0
    assert "serial_fallback" in [
        event["event"] for event in engine.journal.tail(100)]


# -- timeouts --------------------------------------------------------------

def test_hung_point_times_out_without_poisoning_the_batch(
        tmp_path, monkeypatch, no_backoff):
    grid = _grid()
    clean = ExecutionEngine(
        jobs=1, cache=DiskCache(tmp_path / "clean")).run_batch(grid)

    monkeypatch.setenv("REPRO_FAULT_SPEC", "hang:key=FUSION:adpcm:tiny")
    engine = ExecutionEngine(
        jobs=2, timeout=0.5, cache=DiskCache(tmp_path / "f"))
    out = engine.run_batch(grid, strict=False)

    failed = [result for result in out if not result.ok]
    assert len(failed) == 1
    assert isinstance(failed[0], FailedResult)
    assert (failed[0].system, failed[0].benchmark) == ("FUSION", "adpcm")
    assert failed[0].attempts >= 1
    assert "RunTimeout" in failed[0].error
    assert failed[0].meta["source"] == "failed"
    # Every other point is bit-identical to the fault-free run.
    for result, baseline in zip(out, clean):
        if result.ok:
            assert result == baseline
    snap = engine.telemetry.snapshot()
    assert snap["timeouts"] == 1
    assert snap["failed_points"] == 1


def test_strict_batch_raises_on_timeout(tmp_path, monkeypatch, no_backoff,
                                        enable_cache):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "hang:key=FUSION:adpcm:tiny")
    engine = ExecutionEngine(
        jobs=2, timeout=0.5, cache=DiskCache(tmp_path / "f"))
    grid = _grid(benchmarks=("adpcm",))
    with pytest.raises(RunTimeout, match="FUSION:adpcm:tiny"):
        engine.run_batch(grid, strict=True)
    # The points that did complete were cached before the raise, so a
    # fixed rerun resumes from where the previous batch died.
    entries, _ = engine.cache.disk_stats()
    assert entries == len(grid) - 1
    monkeypatch.delenv("REPRO_FAULT_SPEC")
    rerun = engine.run_batch(grid)
    assert engine.telemetry.computed == 1  # only the hung one reran
    assert [r.system for r in rerun] == [r.system for r in grid]


def test_unknown_system_aborts_before_executing_anything(engine):
    # Malformed batches are a caller bug, not a runtime fault: even
    # strict=False raises, and nothing is simulated first.
    with pytest.raises(ConfigError, match="unknown system"):
        engine.run_batch([RunRequest("FUSION", "adpcm", "tiny"),
                          RunRequest("GPU", "adpcm", "tiny")],
                         strict=False)
    assert engine.telemetry.computed == 0


# -- cache corruption ------------------------------------------------------

def test_corrupt_cache_entries_recompute_and_count(
        tmp_path, monkeypatch, enable_cache):
    grid = _grid(benchmarks=("adpcm",))
    engine = ExecutionEngine(jobs=1, cache=DiskCache(tmp_path / "c"))
    first = engine.run_batch(grid)
    assert engine.telemetry.computed == len(grid)

    # Arm corruption, drop the in-memory index so the rerun must read
    # the (now "torn") pickles from disk.
    monkeypatch.setenv("REPRO_FAULT_SPEC", "corrupt-cache:rate=1")
    engine.cache.clear_index()
    second = engine.run_batch(grid)

    assert second == first
    assert engine.cache.corrupt_drops >= len(grid)
    assert engine.telemetry.corrupt_drops == engine.cache.corrupt_drops
    assert engine.telemetry.computed == 2 * len(grid)  # all recomputed
    assert "corrupt_drop" in [
        event["event"] for event in engine.journal.tail(100)]


# -- result aliasing (the bugfix family) -----------------------------------

def test_duplicate_requests_get_independent_results(engine):
    request = RunRequest("FUSION", "adpcm", "tiny")
    one, two = engine.run_batch([request, request])
    assert one == two and one is not two
    assert one.meta is not two.meta
    one.meta["poison"] = True
    assert "poison" not in two.meta


def test_cross_batch_hits_do_not_clobber_earlier_meta(engine, enable_cache):
    [first] = engine.run_batch([RunRequest("FUSION", "adpcm", "tiny")])
    assert first.meta["source"] == "computed"
    [second] = engine.run_batch([RunRequest("FUSION", "adpcm", "tiny")])
    assert second.meta["source"] == "memory"
    assert second == first and second is not first
    # The memory hit must not have rewritten the first caller's view.
    assert first.meta["source"] == "computed"


def test_failed_result_is_a_structured_hole():
    hole = FailedResult("FUSION", "adpcm", "tiny",
                        error="RunTimeout('...')", attempts=2)
    assert hole.ok is False
    assert RunResult.ok is True
    assert hole.system == "FUSION" and hole.attempts == 2


# -- temp-file sweeping ----------------------------------------------------

def test_clear_sweeps_orphaned_temp_files(engine, enable_cache):
    engine.run_batch([RunRequest("FUSION", "adpcm", "tiny")])
    orphan_dir = engine.cache.root \
        / "v{}".format(CACHE_SCHEMA_VERSION) / "ab"
    orphan_dir.mkdir(parents=True, exist_ok=True)
    (orphan_dir / ".tmp-dead-writer").write_bytes(b"x" * 128)
    count, total = engine.cache.temp_stats()
    assert count == 1 and total == 128
    removed = engine.cache.clear()
    assert removed >= 3  # result + trace + orphan, at minimum
    assert engine.cache.temp_stats() == (0, 0)
    assert engine.cache.disk_stats() == (0, 0)


# -- journal ---------------------------------------------------------------

def test_journal_is_a_bounded_ring_with_counts(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_LOG", raising=False)
    journal = EngineJournal()
    for index in range(300):
        journal.emit("tick", index=index)
    tail = journal.tail(1000)
    assert len(tail) == 256                    # ring capacity
    assert tail[-1]["index"] == 299            # newest survives
    assert tail[0]["index"] == 300 - 256       # oldest evicted
    assert all(event["event"] == "tick" for event in tail)
    assert journal.counts()["tick"] == 256
    seqs = [event["seq"] for event in tail]
    assert seqs == sorted(seqs)


def test_journal_mirrors_to_jsonl_log(tmp_path, monkeypatch):
    log_path = tmp_path / "engine.jsonl"
    monkeypatch.setenv("REPRO_ENGINE_LOG", str(log_path))
    journal = EngineJournal()
    journal.emit("pool_respawn", attempt=1)
    journal.emit("timeout", key="FUSION:adpcm:tiny")
    lines = log_path.read_text().splitlines()
    assert len(lines) == 2
    events = [json.loads(line) for line in lines]
    assert events[0]["event"] == "pool_respawn"
    assert events[1]["key"] == "FUSION:adpcm:tiny"
    assert all("t" in event and "seq" in event for event in events)
