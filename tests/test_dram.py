"""DRAM open-page model (repro.mem.dram)."""

from repro.common.config import DramConfig
from repro.common.stats import StatsRegistry
from repro.mem.dram import DRAM_ACCESS_PJ, MainMemory


def make_dram():
    stats = StatsRegistry()
    return MainMemory(DramConfig(), stats), stats


def test_first_access_is_row_miss():
    dram, stats = make_dram()
    latency = dram.access(0)
    assert latency == DramConfig().latency
    assert stats.get("dram.row_misses") == 1


def test_same_page_hits_open_row():
    dram, stats = make_dram()
    dram.access(0)
    latency = dram.access(64)  # same 4 kB page
    assert latency == DramConfig().open_page_latency
    assert stats.get("dram.row_hits") == 1


def test_different_page_same_channel_misses():
    config = DramConfig()
    dram, stats = make_dram()
    dram.access(0)
    far = config.page_size * config.channels  # same channel, new row
    assert dram.access(far) == config.latency
    assert stats.get("dram.row_misses") == 2


def test_channels_keep_independent_open_rows():
    config = DramConfig()
    dram, stats = make_dram()
    dram.access(0)                      # channel 0
    dram.access(config.page_size)       # channel 1
    # Both rows remain open.
    assert dram.access(32) == config.open_page_latency
    assert dram.access(config.page_size + 32) == config.open_page_latency


def test_energy_and_rw_counters():
    dram, stats = make_dram()
    dram.access(0)
    dram.access(64, is_store=True)
    assert stats.get("dram.reads") == 1
    assert stats.get("dram.writes") == 1
    assert stats.get("dram.energy_pj") == 2 * DRAM_ACCESS_PJ


def test_reset_closes_rows():
    dram, stats = make_dram()
    dram.access(0)
    dram.reset()
    assert dram.access(0) == DramConfig().latency
