"""Coherence message vocabulary (repro.coherence.messages)."""

from repro.common.stats import StatsRegistry
from repro.coherence.messages import DATA_MESSAGES, MSG_SIZE, Msg, is_data, \
    send, size_of
from repro.interconnect.link import Link


def test_every_message_has_a_size():
    for msg in Msg:
        assert size_of(msg) > 0


def test_control_messages_are_single_flit():
    for msg in Msg:
        if not is_data(msg):
            assert size_of(msg) == 8, msg


def test_data_messages_carry_payloads():
    assert size_of(Msg.DATA_LINE) == 64
    assert size_of(Msg.WB_DATA) == 64
    assert size_of(Msg.WT_DATA) == 8
    assert size_of(Msg.PUTX) == 72  # notice + line


def test_putx_is_data_puts_is_control():
    assert is_data(Msg.PUTX)
    assert not is_data(Msg.PUTS)


def test_data_messages_set_is_consistent():
    for msg in DATA_MESSAGES:
        assert is_data(msg)


def test_send_routes_to_msg_or_data():
    stats = StatsRegistry()
    link = Link("l", 1.0, stats)
    send(link, Msg.GETS)
    send(link, Msg.DATA_LINE)
    assert stats.get("link.l.msgs") == 1
    assert stats.get("link.l.data_transfers") == 1


def test_send_records_named_counter():
    stats = StatsRegistry()
    link = Link("l", 1.0, stats)
    send(link, Msg.FWD_GETS, stats, "mesi.sent")
    assert stats.get("mesi.sent.fwd_gets") == 1
