"""Coherence message vocabulary (repro.coherence.messages)."""

import zlib

from repro.common.stats import StatsRegistry
from repro.coherence.messages import DATA_MESSAGES, MSG_SIZE, Msg, is_data, \
    send, size_of
from repro.interconnect.link import Link


def test_every_message_has_a_size():
    for msg in Msg:
        assert size_of(msg) > 0


def test_control_messages_are_single_flit():
    for msg in Msg:
        if not is_data(msg):
            assert size_of(msg) == 8, msg


def test_data_messages_carry_payloads():
    assert size_of(Msg.DATA_LINE) == 64
    assert size_of(Msg.WB_DATA) == 64
    assert size_of(Msg.WT_DATA) == 8
    assert size_of(Msg.PUTX) == 72  # notice + line


def test_putx_is_data_puts_is_control():
    assert is_data(Msg.PUTX)
    assert not is_data(Msg.PUTS)


def test_data_messages_set_is_consistent():
    for msg in DATA_MESSAGES:
        assert is_data(msg)


def test_send_routes_to_msg_or_data():
    stats = StatsRegistry()
    link = Link("l", 1.0, stats)
    send(link, Msg.GETS)
    send(link, Msg.DATA_LINE)
    assert stats.get("link.l.msgs") == 1
    assert stats.get("link.l.data_transfers") == 1


def test_send_records_named_counter():
    stats = StatsRegistry()
    link = Link("l", 1.0, stats)
    send(link, Msg.FWD_GETS, stats, "mesi.sent")
    assert stats.get("mesi.sent.fwd_gets") == 1


# -- stable identity (the model checker folds Msg into state hashes) -------

def test_repr_names_the_message():
    assert repr(Msg.GETS) == "Msg.GETS"
    assert repr(Msg.FWD_LINE) == "Msg.FWD_LINE"


def test_hash_is_name_derived_and_process_stable():
    # crc32 of the name: independent of auto() ordering and of
    # PYTHONHASHSEED, so state hashes replay across processes.
    for msg in Msg:
        assert hash(msg) == zlib.crc32(msg.name.encode("ascii"))


def test_hashes_are_distinct_and_dict_safe():
    assert len({hash(msg) for msg in Msg}) == len(list(Msg))
    table = {msg: msg.name for msg in Msg}
    assert table[Msg.PUTX] == "PUTX"


def test_equality_is_identity():
    assert Msg.GETS == Msg.GETS
    assert Msg.GETS != Msg.GETX
    assert Msg.GETS in {Msg.GETS, Msg.DATA_LINE}
