"""Oracle DMA: window partitioning and the controller (repro.host.dma)."""

import pytest

from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp
from repro.coherence.mesi import HostMemorySystem
from repro.host.dma import OracleDmaController, ScratchpadAccessModel, \
    partition_windows
from repro.mem.scratchpad import Scratchpad
from repro.mem.tlb import PageTable


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def trace(ops):
    return FunctionTrace(name="f", benchmark="b", ops=ops)


def test_single_window_when_fits():
    windows = partition_windows(trace([load(0), load(64), store(128)]),
                                capacity_blocks=4)
    assert len(windows) == 1


def test_window_splits_at_capacity():
    ops = [load(i * 64) for i in range(5)]
    windows = partition_windows(trace(ops), capacity_blocks=2)
    assert len(windows) == 3
    for window in windows:
        assert len(window.blocks) <= 2


def test_ops_are_preserved_in_order():
    ops = [load(i * 64) for i in range(5)]
    windows = partition_windows(trace(ops), capacity_blocks=2)
    flattened = [op for w in windows for op in w.ops]
    assert flattened == ops


def test_in_blocks_are_read_first_only():
    ops = [store(0), load(0),     # write-first: no staging needed
           load(64), store(64)]   # read-first: staged
    window = partition_windows(trace(ops), capacity_blocks=8)[0]
    assert window.in_blocks == [64]


def test_out_blocks_are_stores():
    ops = [load(0), store(64), store(128)]
    window = partition_windows(trace(ops), capacity_blocks=8)[0]
    assert window.out_blocks == [64, 128]


def test_repeated_touches_do_not_split():
    ops = [load(0), load(0), load(0), store(0)]
    windows = partition_windows(trace(ops), capacity_blocks=1)
    assert len(windows) == 1


def test_compute_ops_ride_along():
    ops = [load(0), ComputeOp(int_ops=3), store(64)]
    window = partition_windows(trace(ops), capacity_blocks=8)[0]
    assert any(isinstance(op, ComputeOp) for op in window.ops)


def make_dma():
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    dma = OracleDmaController(config, mem, PageTable(), stats)
    scratchpad = Scratchpad(config.tile.scratchpad)
    return dma, scratchpad, stats, config


def test_transfer_in_stages_blocks():
    dma, sp, stats, _ = make_dma()
    latency = dma.transfer_in([0, 64, 128], sp, now=0)
    assert latency > 0
    assert sp.occupancy == 3
    assert stats.get("dma.blocks_in") == 3
    assert stats.get("dma.bytes_in") == 192
    assert stats.get("dma.transfers_in") == 1
    # Each staged block was read coherently at the LLC.
    assert stats.get("l2.accesses") >= 3


def test_empty_transfer_is_free():
    dma, sp, stats, _ = make_dma()
    assert dma.transfer_in([], sp, now=0) == 0
    assert stats.get("dma.transfers_in") == 0


def test_transfer_out_writes_llc():
    dma, sp, stats, _ = make_dma()
    latency = dma.transfer_out([0, 64], now=0)
    assert latency > 0
    assert stats.get("dma.blocks_out") == 2
    assert stats.get("l2.writes") >= 2


def test_stream_latency_includes_setup_and_per_block():
    dma, sp, stats, config = make_dma()
    one = dma.transfer_in([0], sp, 0)
    sp.drain()
    many = dma.transfer_in([i * 64 for i in range(10)], sp, 0)
    assert many - one >= 9 * config.dma.per_block_cycles - 1
    assert one >= config.dma.setup_latency


def test_total_bytes_property():
    dma, sp, _, _ = make_dma()
    dma.transfer_in([0], sp, 0)
    dma.transfer_out([0], 0)
    assert dma.total_bytes == 128


def test_scratchpad_model_allocates_write_first():
    config = small_config()
    stats = StatsRegistry()
    sp = Scratchpad(config.tile.scratchpad)
    model = ScratchpadAccessModel(config, sp, stats)
    latency = model.access(store(0x40), now=0)
    assert latency == config.tile.scratchpad.access_latency
    assert sp.contains(0x40)
    assert sp.dirty_blocks() == [0x40]
    assert stats.get("scratchpad.energy_pj") > 0


def test_scratchpad_model_rejects_unstaged_load():
    from repro.common.errors import SimulationError
    config = small_config()
    model = ScratchpadAccessModel(config, Scratchpad(config.tile.scratchpad),
                                  StatsRegistry())
    with pytest.raises(SimulationError):
        model.access(load(0x40), now=0)
