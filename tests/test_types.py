"""Core value types (repro.common.types)."""

import pytest

from repro.common.types import (
    AccessType,
    ComputeOp,
    FunctionTrace,
    MemOp,
    WorkloadTrace,
    block_address,
    block_offset,
)


def test_block_address_aligns_down():
    assert block_address(0) == 0
    assert block_address(63) == 0
    assert block_address(64) == 64
    assert block_address(130) == 128


def test_block_offset():
    assert block_offset(130) == 2
    assert block_offset(64) == 0


def test_memop_block_property():
    op = MemOp(AccessType.LOAD, 0x1234)
    assert op.block == block_address(0x1234)


def test_memop_is_store():
    assert MemOp(AccessType.STORE, 0).is_store
    assert not MemOp(AccessType.LOAD, 0).is_store
    assert AccessType.STORE.is_store
    assert not AccessType.LOAD.is_store


def test_compute_op_total():
    assert ComputeOp(int_ops=3, fp_ops=4).total == 7


def _trace(name, ops):
    return FunctionTrace(name=name, benchmark="bench", ops=ops)


def test_function_trace_mem_ops_filtering():
    ops = [MemOp(AccessType.LOAD, 0), ComputeOp(int_ops=1),
           MemOp(AccessType.STORE, 64)]
    trace = _trace("f", ops)
    assert trace.num_mem_ops == 2
    assert len(list(trace.compute_ops())) == 1


def test_function_trace_touched_and_dirty_blocks():
    ops = [MemOp(AccessType.LOAD, 0), MemOp(AccessType.STORE, 64),
           MemOp(AccessType.STORE, 70)]
    trace = _trace("f", ops)
    assert trace.touched_blocks() == {0, 64}
    assert trace.dirty_blocks() == {64}


def test_workload_axc_mapping_is_stable_across_repeats():
    workload = WorkloadTrace(benchmark="b", invocations=[
        _trace("a", []), _trace("b", []), _trace("a", []),
    ])
    assert workload.function_names() == ["a", "b"]
    assert workload.axc_of("a") == 0
    assert workload.axc_of("b") == 1
    assert workload.num_axcs == 2


def test_workload_working_set_union():
    workload = WorkloadTrace(benchmark="b", invocations=[
        _trace("a", [MemOp(AccessType.LOAD, 0)]),
        _trace("b", [MemOp(AccessType.STORE, 0),
                     MemOp(AccessType.STORE, 128)]),
    ])
    assert workload.working_set_blocks() == {0, 128}


def test_unknown_function_raises():
    workload = WorkloadTrace(benchmark="b", invocations=[_trace("a", [])])
    with pytest.raises(ValueError):
        workload.axc_of("missing")
