"""Bank contention model (repro.mem.banking) and its integration."""

from dataclasses import replace

from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.mem.banking import BankContention
from repro.systems import PipelinedFusionSystem, SYSTEMS
from repro.workloads.registry import build_workload


def make_banks(num_banks=4, occupancy=2):
    return BankContention(num_banks, occupancy, StatsRegistry())


def test_free_bank_has_no_delay():
    banks = make_banks()
    assert banks.access(0, now=10) == 0


def test_same_cycle_same_bank_conflicts():
    banks = make_banks(occupancy=2)
    assert banks.access(0, now=10) == 0
    assert banks.access(0, now=10) == 2
    assert banks.conflicts == 1


def test_different_banks_do_not_conflict():
    banks = make_banks(num_banks=4)
    assert banks.access(0, now=10) == 0
    assert banks.access(1, now=10) == 0
    assert banks.conflicts == 0


def test_sets_interleave_across_banks():
    banks = make_banks(num_banks=4)
    assert banks.bank_of(0) == 0
    assert banks.bank_of(5) == 1
    assert banks.bank_of(4) == 0


def test_spaced_accesses_do_not_conflict():
    banks = make_banks(occupancy=1)
    assert banks.access(0, now=10) == 0
    assert banks.access(0, now=11) == 0


def test_back_to_back_conflicts_accumulate():
    banks = make_banks(num_banks=1, occupancy=3)
    banks.access(0, now=0)
    assert banks.access(0, now=0) == 3
    assert banks.access(0, now=0) == 6
    assert banks.stats.get("conflict_cycles") == 9


def test_reset():
    banks = make_banks()
    banks.access(0, now=0)
    banks.reset()
    assert banks.access(0, now=0) == 0


def contention_config():
    config = small_config()
    return replace(config, tile=replace(config.tile,
                                        model_bank_conflicts=True))


def test_disabled_by_default():
    workload = build_workload("adpcm", "tiny")
    result = SYSTEMS["FUSION"](small_config(), workload).run()
    assert "l1x.banks.accesses" not in result.stats


def test_sequential_fusion_sees_few_conflicts():
    """One AXC at a time spaces L1X accesses out: conflicts are rare."""
    workload = build_workload("adpcm", "tiny")
    result = SYSTEMS["FUSION"](contention_config(), workload).run()
    accesses = result.stat("l1x.banks.accesses")
    conflicts = result.stat("l1x.banks.conflicts", 0)
    assert accesses > 0
    assert conflicts <= 0.05 * accesses


def test_pipelined_overlap_creates_bank_pressure():
    """Concurrent invocations interleave L1X accesses at the same local
    times: the contention model must observe more conflicts than the
    sequential schedule does."""
    workload = build_workload("disparity", "tiny")
    sequential = SYSTEMS["FUSION"](contention_config(), workload).run()
    pipelined = PipelinedFusionSystem(contention_config(),
                                      workload).run()
    assert pipelined.stat("l1x.banks.conflicts", 0) >= \
        sequential.stat("l1x.banks.conflicts", 0)


def test_shared_contention_counts():
    workload = build_workload("adpcm", "tiny")
    result = SYSTEMS["SHARED"](contention_config(), workload).run()
    assert result.stat("l1x.banks.accesses") > 0
