"""Unit conversions (repro.common.units)."""

import pytest

from repro.common import units


def test_flit_rounding_exact():
    assert units.bytes_to_flits(64) == 8


def test_flit_rounding_up():
    assert units.bytes_to_flits(65) == 9
    assert units.bytes_to_flits(1) == 1


def test_flit_zero():
    assert units.bytes_to_flits(0) == 0


def test_to_kb():
    assert units.to_kb(2048) == 2.0


def test_pj_to_uj():
    assert units.pj_to_uj(1_000_000) == 1.0


def test_cycles_to_us_at_2ghz():
    assert units.cycles_to_us(2_000_000_000) == pytest.approx(1e6)
    assert units.cycles_to_us(2000) == pytest.approx(1.0)


def test_line_and_flit_sizes_consistent():
    assert units.LINE_SIZE % units.FLIT_SIZE == 0
    assert units.CONTROL_MSG_SIZE == units.FLIT_SIZE
