"""Trace lowering (repro.workloads.lowering)."""

import math

from repro.accel.core import AxcCore
from repro.common.stats import StatsRegistry
from repro.common.types import (
    AccessType,
    ComputeOp,
    FunctionTrace,
    MemOp,
    PhaseMarker,
    block_address,
)
from repro.workloads.lowering import (
    LoweredTrace,
    invalidate_lowered,
    lower_trace,
    lower_workload,
    lowered_trace,
)


def _trace(ops):
    return FunctionTrace(name="t", benchmark="b", ops=ops, lease_time=100)


def test_lowered_stream_structure():
    ops = [
        ComputeOp(int_ops=4, fp_ops=0),
        ComputeOp(int_ops=0, fp_ops=8),
        MemOp(AccessType.LOAD, 0x1234),
        PhaseMarker(label="x"),
        MemOp(AccessType.STORE, 0x80),
        ComputeOp(int_ops=2, fp_ops=2),
    ]
    lowered = lower_trace(_trace(ops), issue_width=4)
    # chunk, mem, mem, chunk — phase marker dropped.
    assert len(lowered.steps) == 4
    chunk0, mem0, mem1, chunk1 = lowered.steps
    assert chunk0[0] is None
    assert mem0 == (ops[2], block_address(0x1234), 1)
    assert mem1 == (ops[4], block_address(0x80), 1)
    assert chunk1[0] is None
    assert lowered.mem_ops == 2
    assert lowered.int_ops == 6
    assert lowered.fp_ops == 10
    assert lowered.compute_chunks == 2
    assert lowered.mem_runs == 2
    assert lowered.coalesced_ops == 0


def test_consecutive_same_line_ops_form_one_run():
    """Maximal same-line same-kind sequences coalesce into one step."""
    ops = [
        MemOp(AccessType.LOAD, 0x100),
        MemOp(AccessType.LOAD, 0x108),   # same line, same kind
        MemOp(AccessType.LOAD, 0x110),   # same line, same kind
        MemOp(AccessType.STORE, 0x118),  # same line, kind break
        MemOp(AccessType.STORE, 0x140),  # line break
    ]
    lowered = lower_trace(_trace(ops), issue_width=4)
    assert lowered.steps == [
        (ops[0], block_address(0x100), 3),
        (ops[3], block_address(0x100), 1),
        (ops[4], block_address(0x140), 1),
    ]
    assert lowered.mem_ops == 5
    assert lowered.mem_runs == 3
    assert lowered.coalesced_ops == 3


def test_compute_chunk_breaks_a_run_but_phase_marker_does_not():
    """A compute chunk's latency interleaves with the run timeline, so
    it must terminate the run; a phase marker costs nothing and must
    not (exactly as it never advanced the legacy timeline)."""
    ops = [
        MemOp(AccessType.LOAD, 0x100),
        PhaseMarker(label="x"),
        MemOp(AccessType.LOAD, 0x108),
        ComputeOp(int_ops=4, fp_ops=0),
        MemOp(AccessType.LOAD, 0x110),
    ]
    lowered = lower_trace(_trace(ops), issue_width=4)
    assert lowered.steps == [
        (ops[0], block_address(0x100), 2),
        (None, 1, 1),
        (ops[4], block_address(0x100), 1),
    ]
    assert lowered.mem_runs == 2
    assert lowered.coalesced_ops == 2


def test_subclassed_mem_ops_never_coalesce():
    class TracedMemOp(MemOp):
        pass

    ops = [
        MemOp(AccessType.LOAD, 0x100),
        TracedMemOp(AccessType.LOAD, 0x108),
        TracedMemOp(AccessType.LOAD, 0x110),
        MemOp(AccessType.LOAD, 0x118),
    ]
    lowered = lower_trace(_trace(ops), issue_width=4)
    assert [step[2] for step in lowered.steps] == [1, 1, 1, 1]
    assert lowered.mem_ops == 4
    assert lowered.mem_runs == 4
    assert lowered.coalesced_ops == 0


def test_fused_chunk_latency_sums_per_op_latencies():
    """Fusion must charge the SUM of per-op ``max(1, ceil(total/w))``
    latencies — never re-derive a latency from the summed activity
    (ceil-of-sum would under-charge and break bit-identity)."""
    ops = [ComputeOp(int_ops=1, fp_ops=0),   # ceil(1/4) -> 1
           ComputeOp(int_ops=1, fp_ops=0),   # ceil(1/4) -> 1
           ComputeOp(int_ops=5, fp_ops=0)]   # ceil(5/4) -> 2
    lowered = lower_trace(_trace(ops), issue_width=4)
    assert lowered.steps == [(None, 4, 1)]
    # The naive (wrong) alternative would give ceil(7/4) == 2.
    assert math.ceil(7 / 4) != 4


def test_memoised_per_issue_width_and_invalidate():
    trace = _trace([MemOp(AccessType.LOAD, 64)])
    first = lowered_trace(trace, 4)
    assert lowered_trace(trace, 4) is first
    assert lowered_trace(trace, 8) is not first
    invalidate_lowered(trace)
    assert lowered_trace(trace, 4) is not first


def test_lower_workload_prelowers_every_invocation(fft_tiny):
    lower_workload(fft_tiny)
    for trace in fft_tiny.invocations:
        assert trace.__dict__["_lowered_by_width"][4] is \
            lowered_trace(trace, 4)


def test_run_and_iter_run_agree():
    """The tight loop (run) and the generator (iter_run) must produce
    the same end time and the same stats for the same inputs."""
    ops = []
    for i in range(100):
        ops.append(ComputeOp(int_ops=i % 7, fp_ops=i % 3))
        ops.append(MemOp(
            AccessType.STORE if i % 5 == 0 else AccessType.LOAD,
            (i % 16) * 64))
    trace = _trace(ops)

    def access_fn(op, now):
        return 3 if op.kind is AccessType.LOAD else 5

    run_stats = StatsRegistry()
    run_core = AxcCore(0, run_stats)
    run_end = run_core.run(trace, 10, access_fn, mlp=3)

    iter_stats = StatsRegistry()
    iter_core = AxcCore(0, iter_stats)
    generator = iter_core.iter_run(trace, 10, access_fn, mlp=3)
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            iter_end = stop.value
            break

    assert run_end == iter_end
    assert run_stats.snapshot() == iter_stats.snapshot()


def test_lowered_repr_mentions_shape():
    lowered = lower_trace(_trace([MemOp(AccessType.LOAD, 0)]), 4)
    assert isinstance(lowered, LoweredTrace)
    assert "1 mem" in repr(lowered)
