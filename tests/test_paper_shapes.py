"""Paper-shape regression tests.

These lock in the *qualitative* results of the evaluation at the
``small`` workload size (fast enough for CI): who wins, and on which
side of 1.0 each ratio falls.  The ``full``-size magnitudes live in the
benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.common.config import WritePolicy, large_config, small_config
from repro.sim.simulator import run


def cycles(system, benchmark, size="small", config=None):
    return run(system, benchmark, size, config).accel_cycles


def energy(system, benchmark, size="small", config=None):
    return run(system, benchmark, size, config).energy.total_pj


# -- Lesson 1/2: performance --------------------------------------------------

def test_fusion_beats_scratch_on_dma_bound_fft():
    assert cycles("FUSION", "fft") < cycles("SCRATCH", "fft")


def test_shared_beats_scratch_on_dma_bound_fft():
    assert cycles("SHARED", "fft") < cycles("SCRATCH", "fft")


@pytest.mark.parametrize("bench", ["adpcm", "susan", "filter"])
def test_shared_slower_than_scratch_on_small_wset(bench):
    """Lesson 1: the shared L1X penalty hurts when the scratchpad
    already captures the locality."""
    assert cycles("SHARED", bench) > cycles("SCRATCH", bench)


@pytest.mark.parametrize("bench", ["fft", "adpcm", "susan", "filter",
                                       "tracking", "histogram",
                                       "disparity"])
def test_fusion_never_slower_than_shared(bench):
    """Lesson 2: the L0X recovers the SHARED system's degradation."""
    assert cycles("FUSION", bench) <= cycles("SHARED", bench) * 1.02


# -- Lesson 3: energy ----------------------------------------------------------

def test_fusion_saves_energy_on_fft():
    assert energy("FUSION", "fft") < 0.5 * energy("SCRATCH", "fft")


def test_fusion_cheaper_than_shared_on_small_wset():
    for benchmark in ("adpcm", "susan", "filter"):
        assert energy("FUSION", benchmark) < energy("SHARED", benchmark)


def test_fusion_l0x_cuts_tile_link_energy_vs_shared():
    """Lesson 4: the L0X filters the request messages SHARED pays for."""
    for benchmark in ("fft", "adpcm"):
        shared = run("SHARED", benchmark, "small")
        fusion = run("FUSION", benchmark, "small")
        assert fusion.axc_link_msgs < 0.2 * shared.axc_link_msgs


# -- Lesson 5: write policy ------------------------------------------------------

@pytest.mark.parametrize("bench", ["adpcm", "histogram", "tracking"])
def test_write_through_costs_more_flits(bench):
    wb_config = small_config()
    wt_config = wb_config.with_l0x_write_policy(WritePolicy.WRITE_THROUGH)
    wb = run("FUSION", bench, "small", wb_config)
    wt = run("FUSION", bench, "small", wt_config)
    assert wt.write_flits > wb.write_flits


# -- Lesson 6: forwarding ---------------------------------------------------------

def test_fusion_dx_saves_tile_energy_on_fft():
    base = run("FUSION", "fft", "small")
    dx = run("FUSION-Dx", "fft", "small")

    def tile_link(result):
        return (result.energy["link_axc_l1x_msg"]
                + result.energy["link_axc_l1x_data"]
                + result.energy["link_fwd"])

    assert dx.forwarded_lines > 0
    assert tile_link(dx) < tile_link(base)


# -- Lesson 7: larger caches ---------------------------------------------------------

def test_larger_caches_hurt_small_wset_energy():
    for benchmark in ("adpcm", "susan", "filter"):
        small_energy = energy("FUSION", benchmark, config=small_config())
        large_energy = energy("FUSION", benchmark, config=large_config())
        assert large_energy > small_energy


# -- Lesson 8: address translation -----------------------------------------------------

def test_translation_energy_below_one_percent():
    for benchmark in ("fft", "adpcm", "histogram"):
        result = run("FUSION", benchmark, "small")
        assert result.energy["xlat"] < 0.01 * result.energy.total_pj


def test_rmap_lookups_rarer_than_tlb_lookups():
    for benchmark in ("fft", "histogram"):
        result = run("FUSION", benchmark, "small")
        assert result.ax_rmap_lookups < result.ax_tlb_lookups * 2


# -- DMA pathology (Figure 6d) -----------------------------------------------------------

def test_dma_traffic_exceeds_working_set_on_fft():
    from repro.workloads.characterize import working_set_kb
    from repro.workloads.registry import build_workload
    result = run("SCRATCH", "fft", "small")
    wset = working_set_kb(build_workload("fft", "small"))
    assert result.dma_kb > 5 * wset
