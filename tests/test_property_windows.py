"""Property-based tests: oracle DMA window partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp
from repro.host.dma import partition_windows

mem_op = st.builds(
    MemOp,
    kind=st.sampled_from([AccessType.LOAD, AccessType.STORE]),
    addr=st.integers(min_value=0, max_value=64 * 63),
)
trace_ops = st.lists(
    st.one_of(mem_op, st.builds(ComputeOp, int_ops=st.integers(1, 5))),
    max_size=150)
capacities = st.integers(min_value=1, max_value=8)


def make_trace(ops):
    return FunctionTrace(name="f", benchmark="b", ops=ops)


@given(trace_ops, capacities)
@settings(max_examples=200)
def test_windows_preserve_all_ops_in_order(ops, capacity):
    windows = partition_windows(make_trace(ops), capacity)
    assert [op for w in windows for op in w.ops] == ops


@given(trace_ops, capacities)
@settings(max_examples=200)
def test_windows_respect_capacity(ops, capacity):
    for window in partition_windows(make_trace(ops), capacity):
        assert len(window.blocks) <= capacity


@given(trace_ops, capacities)
@settings(max_examples=200)
def test_in_blocks_are_read_first_blocks(ops, capacity):
    for window in partition_windows(make_trace(ops), capacity):
        first = {}
        stored = set()
        for op in window.ops:
            if isinstance(op, MemOp):
                first.setdefault(op.block, op.kind)
                if op.is_store:
                    stored.add(op.block)
        expected_in = sorted(b for b, k in first.items()
                             if k is AccessType.LOAD)
        assert window.in_blocks == expected_in
        assert window.out_blocks == sorted(stored)


@given(trace_ops, capacities)
@settings(max_examples=200)
def test_every_staged_block_is_used(ops, capacity):
    for window in partition_windows(make_trace(ops), capacity):
        touched = {op.block for op in window.ops
                   if isinstance(op, MemOp)}
        assert set(window.in_blocks) <= touched
        assert set(window.out_blocks) <= touched
        assert window.blocks == touched
