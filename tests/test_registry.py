"""Benchmark registry (repro.workloads.registry)."""

import pytest

from repro.common.errors import TraceError
from repro.common.units import KB, LINE_SIZE
from repro.workloads.characterize import working_set_kb
from repro.workloads.registry import BENCHMARKS, LABELS, build_workload, \
    build_workload_with_outputs


def test_seven_benchmarks_in_paper_order():
    assert BENCHMARKS == ("fft", "disparity", "tracking", "adpcm",
                          "susan", "filter", "histogram")


def test_every_benchmark_has_a_label():
    assert set(LABELS) == set(BENCHMARKS)


def test_unknown_benchmark_rejected():
    with pytest.raises(TraceError):
        build_workload("quicksort")


def test_unknown_size_rejected():
    with pytest.raises(TraceError):
        build_workload("fft", "huge")


def test_workloads_are_cached():
    assert build_workload("adpcm", "tiny") is build_workload("adpcm",
                                                             "tiny")


def test_sizes_are_ordered(any_tiny_workload):
    name = any_tiny_workload.benchmark
    tiny = len(build_workload(name, "tiny").working_set_blocks())
    small = len(build_workload(name, "small").working_set_blocks())
    assert tiny <= small


def test_workload_metadata_complete(any_tiny_workload):
    workload = any_tiny_workload
    assert workload.invocations
    assert workload.host_input_arrays
    assert workload.host_output_arrays
    assert workload.array_ranges
    assert 2 <= workload.num_axcs <= 6  # Table 2: 2 (FILT) - 6 (FFT)


def test_axc_counts_match_table2():
    assert build_workload("fft", "tiny").num_axcs == 6
    assert build_workload("filter", "tiny").num_axcs == 2


@pytest.mark.slow
def test_full_working_sets_match_paper_relations():
    """The capacity relationships the paper's results depend on."""
    wset = {name: working_set_kb(build_workload(name, "full"))
            for name in BENCHMARKS}
    # ADPCM, SUSAN, FILT: under 30 kB (Section 5.1).
    for name in ("adpcm", "susan", "filter"):
        assert wset[name] < 30, name
    # Everything the scratchpad can't hold.
    for name in BENCHMARKS:
        assert wset[name] * KB > 4 * KB
    # DISP overflows the 64 kB L1X but fits the 256 kB one (Fig 7).
    assert 64 < wset["disparity"] < 256
    # TRACK and HIST overflow both L1X sizes.
    assert wset["tracking"] > 256
    assert wset["histogram"] > 1024


def test_outputs_and_workload_share_cache():
    workload, outputs = build_workload_with_outputs("adpcm", "tiny")
    assert workload is build_workload("adpcm", "tiny")
    assert outputs
