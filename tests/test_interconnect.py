"""Links and the NUCA ring (repro.interconnect)."""

import pytest

from repro.common.config import LinkEnergyConfig
from repro.common.stats import StatsRegistry
from repro.interconnect.link import Link, tile_links
from repro.interconnect.ring import NucaRing


def make_link(pj=0.5):
    stats = StatsRegistry()
    return Link("test", pj, stats), stats


def test_msg_accounting():
    link, stats = make_link(pj=0.5)
    link.send_msg()
    assert stats.get("link.test.msgs") == 1
    assert stats.get("link.test.msg_bytes") == 8
    assert stats.get("link.test.flits") == 1
    assert stats.get("link.test.msg_energy_pj") == pytest.approx(4.0)


def test_data_accounting():
    link, stats = make_link(pj=2.0)
    link.send_data(64)
    assert stats.get("link.test.data_transfers") == 1
    assert stats.get("link.test.data_bytes") == 64
    assert stats.get("link.test.flits") == 8
    assert stats.get("link.test.data_energy_pj") == pytest.approx(128.0)


def test_total_energy_property():
    link, _ = make_link(pj=1.0)
    link.send_msg()
    link.send_data(8)
    assert link.total_energy_pj == pytest.approx(16.0)


def test_tile_links_use_table2_costs():
    stats = StatsRegistry()
    axc, host, fwd = tile_links(LinkEnergyConfig(), stats)
    assert axc.pj_per_byte == pytest.approx(0.4)
    assert host.pj_per_byte == pytest.approx(6.0)
    assert fwd.pj_per_byte == pytest.approx(0.1)


def make_ring(banks=8):
    return NucaRing(banks, StatsRegistry())


def test_bank_mapping_is_line_interleaved():
    ring = make_ring()
    assert ring.bank_of(0) == 0
    assert ring.bank_of(64) == 1
    assert ring.bank_of(64 * 8) == 0


def test_hops_take_shortest_direction():
    ring = make_ring(banks=8)
    assert ring.hops_to(0) == 0
    assert ring.hops_to(1) == 1
    assert ring.hops_to(7) == 1   # wrap-around
    assert ring.hops_to(4) == 4   # farthest


def test_average_latency_near_table2():
    """Table 2 quotes ~20 cycles average for the 8-tile NUCA ring."""
    assert 16 <= make_ring().average_latency() <= 24


def test_traverse_counts_energy_and_hops():
    ring = make_ring()
    stats = ring.stats
    latency = ring.traverse(64)  # bank 1, 1 hop each way
    assert latency == ring.base_latency + 2 * ring.hop_latency
    assert stats.get("hops") == 2
    assert stats.get("energy_pj") > 0


def test_local_bank_has_no_hop_energy():
    ring = make_ring()
    ring.traverse(0)
    assert ring.stats.get("energy_pj") == 0
