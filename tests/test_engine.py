"""The parallel execution engine and persistent result cache
(repro.sim.engine)."""

import dataclasses
import os
import pickle

import pytest

from repro.common.config import (
    ConfigError,
    SystemConfig,
    config_fingerprint,
    small_config,
    stable_config_dict,
)
from repro.sim.engine import (
    CACHE_SCHEMA_VERSION,
    DiskCache,
    ExecutionEngine,
    RunRequest,
    cache_key,
    code_fingerprint,
    configure,
    get_engine,
    reset_engine,
    resolve_jobs,
)
from repro.sim.simulator import clear_cache, run


@pytest.fixture
def engine(tmp_path):
    """A private engine over a throwaway cache directory."""
    return ExecutionEngine(cache=DiskCache(tmp_path / "cache"))


def _batch(*systems, size="tiny", benchmark="adpcm", config=None):
    return [RunRequest(system, benchmark, size, config)
            for system in systems]


# -- config fingerprinting -------------------------------------------------

def test_equal_configs_fingerprint_identically():
    assert (config_fingerprint(small_config())
            == config_fingerprint(small_config()))


def test_any_field_change_changes_fingerprint():
    base = small_config()
    assert (config_fingerprint(base)
            != config_fingerprint(base.with_lease(123)))
    assert (config_fingerprint(base)
            != config_fingerprint(dataclasses.replace(base, name="x")))


def test_unfingerprintable_config_rejected():
    with pytest.raises(ConfigError, match="cannot fingerprint"):
        stable_config_dict(lambda: None)


def test_stable_dict_sorts_mappings_and_sets():
    assert stable_config_dict({"b": 1, "a": 2}) == \
        stable_config_dict({"a": 2, "b": 1})
    assert stable_config_dict({2, 1, 3}) == stable_config_dict({3, 1, 2})


# -- cache keys ------------------------------------------------------------

def test_cache_key_stable_across_equal_requests():
    a = RunRequest("FUSION", "adpcm", "tiny").normalized()
    b = RunRequest("FUSION", "adpcm", "tiny", small_config())
    assert cache_key(a) == cache_key(b)


def test_cache_key_varies_with_every_component():
    base = RunRequest("FUSION", "adpcm", "tiny").normalized()
    keys = {cache_key(base)}
    keys.add(cache_key(dataclasses.replace(base, system="SHARED")))
    keys.add(cache_key(dataclasses.replace(base, benchmark="fft")))
    keys.add(cache_key(dataclasses.replace(base, size="small")))
    keys.add(cache_key(dataclasses.replace(
        base, config=small_config().with_lease(77))))
    keys.add(cache_key(base, epoch=1))
    assert len(keys) == 6


def test_code_fingerprint_is_stable_in_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


# -- jobs resolution -------------------------------------------------------

def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs() == (os.cpu_count() or 1)
    assert resolve_jobs(0) == 1


def test_resolve_jobs_env_garbage_warns_and_defaults(monkeypatch):
    # Malformed *environment* values degrade loudly to the default —
    # a daemon must not die because a shell exported REPRO_JOBS=many —
    # while explicit arguments (the caller typed those) still raise.
    default = os.cpu_count() or 1
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
        assert resolve_jobs() == default
    monkeypatch.setenv("REPRO_JOBS", "-3")
    with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
        assert resolve_jobs() == default
    with pytest.raises(ConfigError, match="--jobs"):
        resolve_jobs("many")


def test_resolve_timeout_env_garbage_warns_and_defaults(monkeypatch):
    from repro.sim.engine import resolve_timeout

    monkeypatch.setenv("REPRO_RUN_TIMEOUT", "abc")
    with pytest.warns(RuntimeWarning, match="REPRO_RUN_TIMEOUT"):
        assert resolve_timeout() is None
    monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
    assert resolve_timeout() == 2.5
    monkeypatch.setenv("REPRO_RUN_TIMEOUT", "-1")
    assert resolve_timeout() is None          # <=0 disables, no warning
    with pytest.raises(ConfigError, match="--timeout"):
        resolve_timeout("abc")


def test_resolve_retries_env_garbage_warns_and_defaults(monkeypatch):
    from repro.sim.engine import resolve_retries

    monkeypatch.setenv("REPRO_RETRIES", "lots")
    with pytest.warns(RuntimeWarning, match="REPRO_RETRIES"):
        assert resolve_retries() == 2
    monkeypatch.setenv("REPRO_RETRIES", "-1")
    with pytest.warns(RuntimeWarning, match="REPRO_RETRIES"):
        assert resolve_retries() == 2
    monkeypatch.setenv("REPRO_RETRIES", "5")
    assert resolve_retries() == 5
    with pytest.raises(ConfigError, match="--retries"):
        resolve_retries("lots")


def test_resolve_backoff_env_garbage_warns_and_defaults(monkeypatch):
    from repro.sim.engine import resolve_backoff

    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "soon")
    with pytest.warns(RuntimeWarning, match="REPRO_RETRY_BACKOFF"):
        assert resolve_backoff() == 0.05
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.2")
    assert resolve_backoff() == 0.2


def test_env_flag_unrecognized_warns(monkeypatch):
    from repro.sim.engine import _env_flag

    monkeypatch.setenv("REPRO_NO_CACHE", "maybe")
    with pytest.warns(RuntimeWarning, match="REPRO_NO_CACHE"):
        assert _env_flag("REPRO_NO_CACHE") is False
    for truthy in ("1", "true", "YES", "on"):
        monkeypatch.setenv("REPRO_NO_CACHE", truthy)
        assert _env_flag("REPRO_NO_CACHE") is True
    for falsy in ("", "0", "false", "no", "OFF"):
        monkeypatch.setenv("REPRO_NO_CACHE", falsy)
        assert _env_flag("REPRO_NO_CACHE") is False


# -- disk cache ------------------------------------------------------------

def test_disk_cache_roundtrip(tmp_path, engine):
    [result] = engine.run_batch(_batch("FUSION"))
    assert engine.telemetry.computed == 1
    # A second engine over the same directory loads it from disk.
    other = ExecutionEngine(cache=engine.cache.__class__(engine.cache.root))
    [loaded] = other.run_batch(_batch("FUSION"))
    assert other.telemetry.computed == 0
    assert other.telemetry.disk_hits == 1
    assert loaded == result and loaded is not result
    assert loaded.meta["source"] == "disk"


def test_disk_cache_disabled_by_env(tmp_path, monkeypatch, engine):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    engine.run_batch(_batch("FUSION"))
    assert engine.cache.disk_stats() == (0, 0)
    monkeypatch.delenv("REPRO_NO_CACHE")
    engine.run_batch(_batch("SHARED"))
    assert engine.cache.disk_stats()[0] == 1


def test_disk_cache_survives_corrupt_entry(engine):
    [first] = engine.run_batch(_batch("FUSION"))
    # Corrupt the single result entry on disk (the other pickle under
    # the root is the prepared-trace entry), drop the index, rerun.
    entries = [path for path in engine.cache.root.rglob("*.pkl")
               if "traces" not in path.parts]
    assert len(entries) == 1
    entries[0].write_bytes(b"not a pickle")
    engine.cache.clear_index()
    [second] = engine.run_batch(_batch("FUSION"))
    assert second == first
    assert engine.telemetry.computed == 2  # recomputed, not crashed


def test_disk_cache_clear_removes_entries(engine):
    engine.run_batch(_batch("FUSION", "SHARED", "SCRATCH"))
    entries, total_bytes = engine.cache.disk_stats()
    assert entries == 3 and total_bytes > 0
    # clear() removes the 3 results plus the 1 shared prepared-trace
    # entry (all three systems ran the same benchmark+size).
    assert engine.cache.clear() == 4
    assert engine.cache.disk_stats() == (0, 0)
    assert engine.cache.trace_stats() == (0, 0)


# -- prepared-workload trace cache -----------------------------------------

def test_prepared_trace_persisted_and_accounted(engine):
    from repro.sim.engine import prepared_workload
    engine.jobs = 1  # serial, so the accounting lands on engine.cache
    engine.run_batch(_batch("FUSION", "SHARED"))
    # One benchmark+size pair -> exactly one prepared-trace pickle,
    # accounted separately from the two result entries.
    assert engine.cache.disk_stats()[0] == 2
    trace_entries, trace_bytes = engine.cache.trace_stats()
    assert trace_entries == 1 and trace_bytes > 0
    assert engine.cache.trace_stores == 1
    assert engine.cache.trace_memory_hits == 1  # second system reused it

    # A fresh cache over the same root loads the prepared workload from
    # disk with the hot-path artifacts already attached.
    fresh = DiskCache(engine.cache.root)
    workload = prepared_workload("adpcm", "tiny", fresh, epoch=0)
    assert fresh.trace_disk_hits == 1
    assert "_function_mlp" in workload.__dict__
    for trace in workload.invocations:
        assert "_lowered_by_width" in trace.__dict__


def test_parallel_workers_share_the_engines_trace_store(tmp_path):
    """Pool workers must write prepared traces under the *submitting*
    engine's cache root, not the process-wide engine's."""
    engine = ExecutionEngine(jobs=2, cache=DiskCache(tmp_path / "p"))
    engine.run_batch(_batch("FUSION", "SHARED"))
    assert engine.telemetry.parallel_computed == 2
    assert engine.cache.trace_stats()[0] == 1


def test_prepared_trace_simulates_identically(engine, tmp_path):
    from repro.sim.engine import _execute
    request = RunRequest("FUSION", "adpcm", "tiny").normalized()
    [via_engine] = engine.run_batch([request])
    # Re-execute from the pickled prepared workload (cold process path).
    fresh = DiskCache(engine.cache.root)
    direct = _execute(request, fresh, 0)
    assert fresh.trace_disk_hits == 1
    assert direct.accel_cycles == via_engine.accel_cycles
    assert direct.total_cycles == via_engine.total_cycles
    assert direct.stats == via_engine.stats


def test_trace_cache_key_varies_and_respects_epoch():
    from repro.sim.engine import trace_cache_key
    keys = {trace_cache_key("fft", "tiny"),
            trace_cache_key("adpcm", "tiny"),
            trace_cache_key("fft", "small"),
            trace_cache_key("fft", "tiny", epoch=1)}
    assert len(keys) == 4
    assert trace_cache_key("fft", "tiny") == trace_cache_key("fft", "tiny")


def test_trace_cache_disabled_by_env(engine, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    engine.run_batch(_batch("FUSION"))
    assert engine.cache.trace_stats() == (0, 0)
    assert engine.cache.trace_stores == 0


# -- batching --------------------------------------------------------------

def test_batch_deduplicates(engine):
    results = engine.run_batch(_batch("FUSION", "SHARED", "FUSION",
                                      "FUSION"))
    assert engine.telemetry.requested == 4
    assert engine.telemetry.unique == 2
    assert engine.telemetry.computed == 2
    # Duplicates simulate once but each caller gets an independent
    # view: equal outcome, distinct object, distinct meta dict (so one
    # caller annotating its result cannot corrupt another's).
    assert results[0] == results[2] == results[3]
    assert results[0] is not results[2] and results[2] is not results[3]
    assert results[0].meta is not results[2].meta


def test_batch_preserves_request_order(engine):
    systems = ("SHARED", "FUSION", "SCRATCH", "FUSION")
    results = engine.run_batch(_batch(*systems))
    assert [result.system for result in results] == list(systems)


def test_batch_rejects_unknown_system(engine):
    with pytest.raises(ConfigError, match="unknown system"):
        engine.run_batch(_batch("FUSION", "GPU"))


def test_warm_batch_is_all_memory_hits(engine):
    engine.run_batch(_batch("FUSION", "SHARED"))
    engine.run_batch(_batch("FUSION", "SHARED"))
    assert engine.telemetry.computed == 2
    assert engine.telemetry.memory_hits == 2
    assert engine.telemetry.hit_ratio() == 0.5


def test_parallel_matches_serial_bit_for_bit(tmp_path):
    grid = _batch("SCRATCH", "SHARED", "FUSION", "FUSION-Dx")
    serial = ExecutionEngine(jobs=1, cache=DiskCache(tmp_path / "a"))
    parallel = ExecutionEngine(jobs=2, cache=DiskCache(tmp_path / "b"))
    serial_results = serial.run_batch(grid)
    parallel_results = parallel.run_batch(grid)
    assert parallel.telemetry.parallel_computed == 4
    assert serial.telemetry.parallel_computed == 0
    assert parallel_results == serial_results
    for result in parallel_results:
        assert result.meta["source"] == "computed-parallel"
        assert result.meta["jobs"] == 2
        assert result.meta["wall_s"] > 0


def test_single_miss_never_spawns_a_pool(engine):
    engine.jobs = 8
    engine.run_batch(_batch("FUSION"))
    assert engine.telemetry.parallel_computed == 0
    assert engine.telemetry.serial_computed == 1


@dataclasses.dataclass(frozen=True)
class _HookedConfig(SystemConfig):
    """A config smuggling a callable: unpicklable and unfingerprintable."""

    hook: object = dataclasses.field(default=None, compare=False)


def test_unpicklable_config_falls_back_to_serial(tmp_path):
    config = _HookedConfig(hook=lambda: None)
    with pytest.raises(Exception):
        pickle.dumps(config)
    engine = ExecutionEngine(jobs=2, cache=DiskCache(tmp_path / "c"))
    results = engine.run_batch(
        _batch("FUSION", config=config) + _batch("SHARED", config=config))
    assert [result.system for result in results] == ["FUSION", "SHARED"]
    assert engine.telemetry.parallel_computed == 0
    assert engine.telemetry.uncacheable == 2
    assert engine.cache.disk_stats() == (0, 0)  # never persisted


# -- telemetry -------------------------------------------------------------

def test_results_carry_engine_telemetry(engine):
    [result] = engine.run_batch(_batch("FUSION"))
    assert result.meta["source"] == "computed"
    assert result.meta["wall_s"] > 0
    assert result.meta["queue_depth"] == 1
    assert result.meta["batch_hit_ratio"] == 0.0


def test_session_stats_persisted(engine):
    engine.run_batch(_batch("FUSION"))
    payload = engine.load_session_stats()
    assert payload["schema_version"] == CACHE_SCHEMA_VERSION
    assert payload["telemetry"]["computed"] == 1


# -- the process-wide engine and clear_cache -------------------------------

def test_get_engine_is_a_singleton():
    reset_engine()
    try:
        assert get_engine() is get_engine()
    finally:
        reset_engine()


def test_configure_overrides(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_engine()
    try:
        engine = configure(jobs=3, cache_enabled=False)
        assert engine.jobs == 3
        assert engine.cache.enabled is False
        engine.run_batch(_batch("FUSION"))
        assert engine.cache.disk_stats() == (0, 0)
    finally:
        reset_engine()


def test_clear_cache_defeats_stale_disk_results():
    first = run("FUSION", "adpcm", "tiny")
    telemetry = get_engine().telemetry
    computed_before = telemetry.computed
    clear_cache()
    second = run("FUSION", "adpcm", "tiny")
    # Recomputed from scratch: the epoch bump must defeat both the
    # in-memory index and the on-disk entry.
    assert telemetry.computed == computed_before + 1
    assert second is not first
    assert second == first  # deterministic


def test_clear_cache_clears_workload_registry():
    from repro.workloads.registry import build_workload
    before = build_workload("adpcm", "tiny")
    clear_cache()
    after = build_workload("adpcm", "tiny")
    assert after is not before


# -- cache schema migration (v1 -> v2) --------------------------------------

def _plant_stale_schema(root, entries=2):
    """Drop pickles into an old-schema version dir, the way a pre-bump
    process left them (results under ``v1/<aa>/`` plus one prepared
    trace under ``v1/traces/<aa>/``)."""
    import pickle as pkl
    stale = root / "v1"
    written = []
    for index in range(entries):
        sub = stale / ("a%d" % index)
        sub.mkdir(parents=True, exist_ok=True)
        path = sub / ("a%d" % index + "0" * 62 + ".pkl")
        path.write_bytes(pkl.dumps({"old-schema": index}))
        written.append(path)
    tdir = stale / "traces" / "bb"
    tdir.mkdir(parents=True, exist_ok=True)
    tpath = tdir / ("bb" + "0" * 62 + ".pkl")
    tpath.write_bytes(pkl.dumps("old prepared trace"))
    written.append(tpath)
    return written


def test_entries_live_under_versioned_dir(engine):
    engine.run_batch(_batch("FUSION"))
    current = "v{}".format(CACHE_SCHEMA_VERSION)
    pkls = list(engine.cache.root.rglob("*.pkl"))
    assert pkls
    assert all(current in path.parts for path in pkls)


def test_stale_schema_entries_are_never_read(engine):
    """Old-schema pickles sit in their own tree: a run over a root
    holding only v1 entries recomputes (no torn reads, no corrupt
    drops) and writes fresh entries under the current dir."""
    _plant_stale_schema(engine.cache.root)
    [result] = engine.run_batch(_batch("FUSION"))
    assert engine.telemetry.computed == 1
    assert engine.telemetry.disk_hits == 0
    assert engine.cache.corrupt_drops == 0
    assert result.accel_cycles > 0
    # The stale tree is untouched by normal operation.
    assert len(list((engine.cache.root / "v1").rglob("*.pkl"))) == 3


def test_stale_schema_stats_counts_old_entries(engine):
    assert engine.cache.stale_schema_stats() == (0, 0)
    _plant_stale_schema(engine.cache.root)
    engine.run_batch(_batch("FUSION"))
    entries, total_bytes = engine.cache.stale_schema_stats()
    assert entries == 3 and total_bytes > 0
    # Current-schema tallies exclude the stale tree.
    assert engine.cache.disk_stats()[0] == 1
    assert engine.cache.trace_stats()[0] == 1


def test_clear_reaps_stale_schema_dirs(engine):
    _plant_stale_schema(engine.cache.root)
    engine.run_batch(_batch("FUSION"))
    # 1 result + 1 prepared trace (current) + 3 stale entries.
    assert engine.cache.clear() == 5
    assert engine.cache.stale_schema_stats() == (0, 0)
    assert not (engine.cache.root / "v1").exists()
    assert engine.cache.disk_stats() == (0, 0)


def test_vector_stats_counts_soa_plans(engine):
    from repro.workloads.vector import HAVE_NUMPY
    assert engine.cache.vector_stats() == (0, 0)
    engine.jobs = 1  # serial, so prepared traces land on engine.cache
    engine.run_batch(_batch("FUSION"))
    plan_entries, windows = engine.cache.vector_stats()
    if HAVE_NUMPY:
        assert plan_entries > 0
    else:
        assert (plan_entries, windows) == (0, 0)

    # A fresh cache over the same root sees the plans ride the
    # prepared-trace pickles from disk.
    fresh = DiskCache(engine.cache.root)
    assert fresh.vector_stats() == (plan_entries, windows)
