"""Determinism of policy runs under parallel execution and caching.

The bandit's only randomness is an explicit ``random.Random(seed)``
owned by the selector, so a POLICY run is a pure function of
(config, workload): serial and parallel engines, and fresh cache
directories, must all produce bit-identical RunResults — the same
property CI's serial-vs-parallel diff checks for the legacy systems.
"""

from repro.common.config import small_config
from repro.policy.engine import train_bandit
from repro.sim.engine import DiskCache, ExecutionEngine, RunRequest


def _policy_grid():
    config = small_config()
    requests = []
    for benchmark in ("fft", "adpcm"):
        for policy in (
            dict(selector="bandit", epsilon=0.2, seed=99),
            dict(selector="ucb", ucb_c=1.5),
            dict(selector="schedule", schedule=("fusion", "scratch")),
        ):
            requests.append(RunRequest(
                "POLICY", benchmark, "tiny",
                config.with_policy(**policy)))
    return requests


def test_policy_parallel_matches_serial_bit_for_bit(tmp_path):
    grid = _policy_grid()
    serial = ExecutionEngine(jobs=1, cache=DiskCache(tmp_path / "a"))
    parallel = ExecutionEngine(jobs=2, cache=DiskCache(tmp_path / "b"))
    serial_results = serial.run_batch(grid)
    parallel_results = parallel.run_batch(grid)
    assert parallel.telemetry.parallel_computed == len(grid)
    assert parallel_results == serial_results


def test_policy_results_replay_from_cache_identically(tmp_path):
    grid = _policy_grid()
    cold = ExecutionEngine(jobs=1, cache=DiskCache(tmp_path / "c"))
    first = cold.run_batch(grid)
    warm = ExecutionEngine(jobs=1, cache=DiskCache(tmp_path / "c"))
    second = warm.run_batch(grid)
    assert warm.telemetry.computed == 0        # all served from disk
    assert second == first


def test_bandit_training_is_reproducible():
    first = train_bandit("fft", size="tiny", episodes=3, epsilon=0.3,
                         seed=42)
    second = train_bandit("fft", size="tiny", episodes=3, epsilon=0.3,
                         seed=42)
    assert first["schedule"] == second["schedule"]
    assert first["episode_cycles"] == second["episode_cycles"]
    assert first["cycles"] == second["cycles"]


def test_bandit_seed_actually_steers_exploration():
    """A different seed must be allowed to explore differently — the
    RNG is real, just explicit.  (The final greedy schedule may still
    converge; the exploration trajectory is what varies.)  The first
    ``len(arms)`` episodes are untried-first and identical for every
    seed; epsilon exploration only starts once each context has tried
    every arm, so six episodes are needed to see the RNG at all."""
    runs = {tuple(train_bandit("fft", size="tiny", episodes=6,
                               epsilon=0.9, seed=seed)["episode_cycles"])
            for seed in (1, 2, 3)}
    assert len(runs) > 1
    assert len({run[:4] for run in runs}) == 1  # untried-first prefix
