"""Host core phase model (repro.host.core)."""

from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.coherence.mesi import HostMemorySystem
from repro.host.core import HostCore
from repro.mem.tlb import PageTable


def make_host():
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    core = HostCore(config, mem, PageTable(), stats)
    return core, mem, stats


def test_produce_touches_every_line():
    core, mem, stats = make_host()
    core.produce(0x10000, 4 * 64, now=0)
    assert stats.get("host_l1.accesses") == 4
    assert stats.get("host.produce_phases") == 1


def test_produce_dirties_lines():
    core, mem, _ = make_host()
    core.produce(0x10000, 64, now=0)
    paddr = core.page_table.translate(0x10000)
    assert mem.l1.lookup(paddr, touch=False).dirty


def test_consume_reads_lines():
    core, mem, stats = make_host()
    core.produce(0x10000, 2 * 64, now=0)
    hits_before = stats.get("host_l1.hits")
    core.consume(0x10000, 2 * 64, now=100)
    assert stats.get("host_l1.hits") == hits_before + 2
    assert stats.get("host.consume_phases") == 1


def test_unaligned_range_covers_all_lines():
    core, _, stats = make_host()
    # 100 bytes starting mid-line spans 3 lines.
    core.produce(0x10000 + 32, 100, now=0)
    assert stats.get("host_l1.accesses") == 3


def test_time_advances_with_overlap():
    core, _, stats = make_host()
    end = core.produce(0x10000, 16 * 64, now=0)
    assert end > 0
    # The OOO core overlaps accesses: faster than the serial latency sum.
    assert stats.get("host.cycles") == end
