"""Scratchpad model (repro.mem.scratchpad)."""

import pytest

from repro.common.config import ScratchpadConfig
from repro.common.errors import SimulationError
from repro.mem.scratchpad import Scratchpad


def make_sp(size=256):
    return Scratchpad(ScratchpadConfig(size_bytes=size))


def test_fill_and_contains():
    sp = make_sp()
    sp.fill(0x40)
    assert sp.contains(0x40)
    assert sp.contains(0x7F)  # same block
    assert not sp.contains(0x80)


def test_fill_is_idempotent():
    sp = make_sp()
    sp.fill(0)
    sp.fill(0)
    assert sp.occupancy == 1


def test_overflow_raises():
    sp = make_sp(size=128)  # 2 blocks
    sp.fill(0)
    sp.fill(64)
    with pytest.raises(SimulationError):
        sp.fill(128)


def test_access_nonresident_raises():
    sp = make_sp()
    with pytest.raises(SimulationError):
        sp.access(0x40, is_store=False)


def test_store_marks_dirty():
    sp = make_sp()
    sp.fill(0)
    sp.fill(64)
    sp.access(0, is_store=False)
    sp.access(64, is_store=True)
    assert sp.dirty_blocks() == [64]


def test_drain_returns_dirty_and_empties():
    sp = make_sp()
    sp.fill(0)
    sp.access(0, is_store=True)
    assert sp.drain() == [0]
    assert sp.occupancy == 0
    assert sp.dirty_blocks() == []


def test_free_blocks_accounting():
    sp = make_sp(size=256)
    assert sp.free_blocks == 4
    sp.fill(0)
    assert sp.free_blocks == 3
