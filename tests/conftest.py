"""Shared fixtures for the test suite.

Workload builds are cached at session scope (they are deterministic and
read-only to the simulator), so the many tests that need a trace don't
re-run the kernels.
"""

import os

import pytest

try:
    from hypothesis import settings as _hyp_settings

    # On failure, print the @reproduce_failure blob alongside the
    # falsifying example, so a property-test failure in CI is
    # reproducible from the log alone (paired with the note() calls in
    # the property tests that print the generated workload spec).
    _hyp_settings.register_profile("repro", print_blob=True)
    _hyp_settings.load_profile("repro")
except ImportError:  # property tests will skip without hypothesis
    pass

from repro.common.config import CacheConfig, small_config
from repro.common.stats import StatsRegistry
from repro.workloads.registry import BENCHMARKS, build_workload


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the engine's persistent cache at a throwaway directory.

    Keeps the developer's real ``~/.cache/repro`` out of test runs (no
    pollution from tiny workloads, no stale hits masking in-test model
    mutation) while still exercising the disk-cache code paths.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-result-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def config():
    return small_config()


@pytest.fixture
def tiny_cache_config():
    """A 4-set, 2-way, 64 B-line cache: small enough to force evictions."""
    return CacheConfig(size_bytes=512, ways=2, hit_latency=1)


@pytest.fixture(scope="session", params=BENCHMARKS)
def any_tiny_workload(request):
    """Each benchmark's tiny workload, parametrised."""
    return build_workload(request.param, "tiny")


@pytest.fixture(scope="session")
def adpcm_tiny():
    return build_workload("adpcm", "tiny")


@pytest.fixture(scope="session")
def fft_tiny():
    return build_workload("fft", "tiny")


def make_mem_system(config=None):
    """Host memory system + fresh stats, for protocol tests."""
    from repro.coherence.mesi import HostMemorySystem
    config = config or small_config()
    stats = StatsRegistry()
    return HostMemorySystem(config, stats), stats


class RecordingTileAgent:
    """Tile agent stub that records forwarded requests."""

    def __init__(self, dirty=False, stall=0):
        self.dirty = dirty
        self.stall = stall
        self.requests = []

    def handle_forwarded_request(self, pblock, now, is_store):
        self.requests.append((pblock, now, is_store))
        return self.stall, self.dirty
