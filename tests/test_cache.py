"""Set-associative cache model (repro.mem.cache)."""

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import SimulationError
from repro.mem.cache import SetAssocCache


def make_cache(size=512, ways=2):
    return SetAssocCache(CacheConfig(size_bytes=size, ways=ways),
                         name="test")


def test_miss_then_hit():
    cache = make_cache()
    assert cache.lookup(0x100) is None
    cache.insert(0x100)
    line = cache.lookup(0x100)
    assert line is not None
    assert line.block == 0x100


def test_lookup_is_line_granular():
    cache = make_cache()
    cache.insert(0x100)
    assert cache.lookup(0x13F) is not None   # same 64 B line
    assert cache.lookup(0x140) is None       # next line


def test_double_insert_raises():
    cache = make_cache()
    cache.insert(0x100)
    with pytest.raises(SimulationError):
        cache.insert(0x100)


def test_lru_eviction_order():
    cache = make_cache(size=512, ways=2)  # 4 sets
    set_stride = 4 * 64  # same set every 256 bytes
    a, b, c = 0, set_stride, 2 * set_stride
    cache.insert(a)
    cache.insert(b)
    cache.lookup(a)          # touch a; b becomes LRU
    victim = cache.insert(c)
    assert victim.block == b
    assert cache.contains(a)
    assert not cache.contains(b)


def test_contains_does_not_perturb_lru():
    cache = make_cache(size=512, ways=2)
    set_stride = 4 * 64
    a, b, c = 0, set_stride, 2 * set_stride
    cache.insert(a)
    cache.insert(b)
    cache.contains(a)        # must NOT refresh a
    victim = cache.insert(c)
    assert victim.block == a


def test_invalidate_returns_line():
    cache = make_cache()
    cache.insert(0x40, dirty=True)
    line = cache.invalidate(0x40)
    assert line.dirty
    assert cache.invalidate(0x40) is None


def test_occupancy_and_resident_blocks():
    cache = make_cache()
    cache.insert(0)
    cache.insert(64)
    assert cache.occupancy == 2
    assert sorted(cache.resident_blocks()) == [0, 64]


def test_dirty_lines_filter():
    cache = make_cache()
    cache.insert(0, dirty=True)
    cache.insert(64)
    dirty = cache.dirty_lines()
    assert [line.block for line in dirty] == [0]


def test_invalidate_all():
    cache = make_cache()
    cache.insert(0)
    cache.insert(64)
    removed = cache.invalidate_all()
    assert len(removed) == 2
    assert cache.occupancy == 0


def test_occupancy_never_exceeds_capacity():
    cache = make_cache(size=512, ways=2)  # 8 lines max
    for i in range(32):
        if not cache.contains(i * 64):
            cache.insert(i * 64)
    assert cache.occupancy <= 8


def test_line_fields_roundtrip():
    cache = make_cache()
    cache.insert(0, dirty=True, state="W", lease=500, paddr=0x1000)
    line = cache.lookup(0)
    assert line.state == "W"
    assert line.lease == 500
    assert line.paddr == 0x1000


def test_multi_eviction_follows_insertion_order():
    # With no intervening touches, victims leave in insertion order.
    cache = make_cache(size=512, ways=2)
    set_stride = 4 * 64
    a, b, c, d = (i * set_stride for i in range(4))
    cache.insert(a)
    cache.insert(b)
    assert cache.insert(c).block == a
    assert cache.insert(d).block == b
    assert cache.contains(c) and cache.contains(d)


def test_untouched_lookup_does_not_perturb_lru():
    cache = make_cache(size=512, ways=2)
    set_stride = 4 * 64
    a, b, c = 0, set_stride, 2 * set_stride
    cache.insert(a)
    cache.insert(b)
    cache.lookup(a, touch=False)   # protocol probe: must not refresh a
    assert cache.insert(c).block == a


def test_reinsert_after_invalidate_is_legal():
    cache = make_cache()
    cache.insert(0x100, dirty=True)
    removed = cache.invalidate(0x100)
    assert removed.dirty
    cache.insert(0x100)            # no SimulationError
    assert not cache.lookup(0x100).dirty


def test_incremental_occupancy_matches_recount():
    """The O(1) occupancy counter must equal a recomputed sum across
    every mutation path: insert (with and without eviction),
    invalidate (hit and no-op), and invalidate_all."""
    cache = make_cache(size=512, ways=2)  # 4 sets, 8 lines
    set_stride = 4 * 64

    def recount():
        return sum(len(s) for s in cache._sets)

    assert cache.occupancy == recount() == 0
    for i in range(6):                       # plain inserts
        cache.insert(i * set_stride + (i % 4) * 64)
        assert cache.occupancy == recount()
    for i in range(6, 12):                   # inserts that evict
        cache.insert(i * set_stride)
        assert cache.occupancy == recount()
    cache.invalidate(6 * set_stride)         # removing hit
    assert cache.occupancy == recount()
    cache.invalidate(0x7F00)                 # absent block: no-op
    assert cache.occupancy == recount()
    cache.insert(6 * set_stride)             # re-insert after invalidate
    assert cache.occupancy == recount()
    cache.invalidate_all()
    assert cache.occupancy == recount() == 0


def test_install_returns_line_and_victim():
    cache = make_cache(size=512, ways=2)
    set_stride = 4 * 64
    line, victim = cache.install(0, state="W")
    assert line.block == 0 and line.state == "W"
    assert victim is None
    cache.install(set_stride)
    _, victim = cache.install(2 * set_stride)
    assert victim.block == 0
    assert cache.lookup(0, touch=False) is None


def test_touch_run_equals_repeated_touching_lookups():
    a = make_cache(size=512, ways=2)
    b = make_cache(size=512, ways=2)
    set_stride = 4 * 64
    for cache in (a, b):
        cache.insert(0)
        cache.insert(set_stride)
    line = a.lookup(0, touch=False)
    a.touch_run(line, 3)
    for _ in range(3):
        b.lookup(0)
    # Same LRU outcome and the same internal clock.
    assert a.insert(2 * set_stride).block == b.insert(
        2 * set_stride).block == set_stride
    assert a._use_clock == b._use_clock


def test_double_insert_reports_cache_name_and_block():
    cache = make_cache()
    cache.insert(0x1C0)
    with pytest.raises(SimulationError, match=r"test: double insert "
                                              r"of block 0x1c0"):
        cache.insert(0x1C0)
