"""Property-based tests: the steady-state phase engine is invisible.

The phase fast path (``phase_quote`` + the bulk timeline application in
``AxcCore.run``) sits one rung above run coalescing on the fallback
ladder (``docs/simulator.md`` §10) and, like it, is a pure interpreter
optimisation: for any trace, on any evaluated system, the
:class:`RunResult` with ``STEADY_PHASES`` enabled must be
*bit-identical* — every cycle count and every stats counter, floats
compared via ``repr`` — to the one computed with the engine disabled
(which serves the same stream through the coalesced-run path).

The traces are biased toward the engine's targets (long eligible
stretches of re-touched lines) *and* its guards: kind changes mid
stretch, cross-line churn through the tiny L0X, compute interleave, and
— adversarially — lease times so short that leases expire mid-phase,
forcing ACC's cover guard to decline every quote and drop the whole
stream down the ladder.
"""

from hypothesis import given, note, settings
from hypothesis import strategies as st

import repro.accel.core as core_mod
from repro.common.config import small_config
from repro.common.types import AccessType, ComputeOp, FunctionTrace, \
    MemOp, WorkloadTrace
from repro.systems import SYSTEMS
from repro.systems.multitenant import MultiTenantFusionSystem

# A segment is either a same-line access run (block index, store?,
# length) or a compute op.  Runs up to 12 ops long build windows the
# phase compiler accepts; a 16-line pool keeps lines churning.
run_segment = st.tuples(
    st.integers(0, 15),       # block index in the shared pool
    st.booleans(),            # store?
    st.integers(1, 12),       # run length
)
compute_segment = st.builds(ComputeOp, int_ops=st.integers(1, 8))
segments = st.lists(st.one_of(run_segment, compute_segment),
                    min_size=1, max_size=24)

workloads = st.lists(
    st.tuples(st.integers(0, 2), segments),   # (function tag, segments)
    min_size=1, max_size=4)

#: Lease times from "expires before a phase can even open" through the
#: catalog default: the short end drives ACC's cover guard (and the
#: lease-capped plan slicer's span cap) into its decline branches.
lease_times = st.sampled_from([1, 3, 7, 30, 250])

BASE = 0x10000


def _expand(segs):
    ops = []
    for seg in segs:
        if isinstance(seg, ComputeOp):
            ops.append(seg)
            continue
        index, is_store, length = seg
        kind = AccessType.STORE if is_store else AccessType.LOAD
        for word in range(length):
            ops.append(MemOp(kind, BASE + index * 64 + (word % 8) * 8))
    return ops


def build(spec, lease_time=250):
    invocations = [
        FunctionTrace(name="fn{}".format(tag), benchmark="prop",
                      ops=_expand(segs), lease_time=lease_time)
        for tag, segs in spec
        if _expand(segs)
    ]
    size = 16 * 64
    return WorkloadTrace(
        benchmark="prop", invocations=invocations,
        host_input_arrays=[(BASE, size)],
        host_output_arrays=[(BASE, size)],
        array_ranges={"pool": (BASE, size)},
    )


def fingerprint(result):
    """Everything a RunResult reports, floats pinned via ``repr``."""
    return {
        "accel_cycles": result.accel_cycles,
        "total_cycles": result.total_cycles,
        "energy_pj": repr(result.energy.total_pj),
        "stats": sorted((name, repr(value))
                        for name, value in result.stats.items()),
    }


def run_both_paths(make_system):
    original = core_mod.STEADY_PHASES
    try:
        core_mod.STEADY_PHASES = True
        phased = make_system().run()
        core_mod.STEADY_PHASES = False
        fallback = make_system().run()
    finally:
        core_mod.STEADY_PHASES = original
    return phased, fallback


@given(workloads)
@settings(max_examples=20, deadline=None)
def test_phase_results_bit_identical_on_all_systems(spec):
    """All six systems — the four designs, IDEAL and the pipelined
    tile — report identical results with the engine on and off."""
    note("workload spec: {!r}".format(spec))
    workload = build(spec)
    if not workload.invocations:
        return
    for system_cls in SYSTEMS.values():
        phased, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(phased) == fingerprint(fallback), \
            "phase engine changed {} results".format(system_cls.name)


@given(workloads, lease_times)
@settings(max_examples=20, deadline=None)
def test_adversarial_leases_stay_bit_identical(spec, lease_time):
    """Leases expiring mid-phase (or before one opens) must make the
    guard decline — never corrupt the timeline."""
    note("workload spec: {!r} lease_time={}".format(spec, lease_time))
    workload = build(spec, lease_time=lease_time)
    if not workload.invocations:
        return
    for name in ("FUSION", "FUSION-Dx", "FUSION-PIPE"):
        system_cls = SYSTEMS[name]
        phased, fallback = run_both_paths(
            lambda: system_cls(small_config(), workload))
        assert fingerprint(phased) == fingerprint(fallback), \
            "phase engine changed {} results under lease {}".format(
                name, lease_time)


@given(workloads, workloads)
@settings(max_examples=15, deadline=None)
def test_multitenant_bit_identical(spec_a, spec_b):
    """Two co-resident processes time-sharing one tile: the phase
    engine must stay invisible across the interleaved invocations."""
    note("workload specs: {!r} / {!r}".format(spec_a, spec_b))
    tenants = [build(spec_a), build(spec_b, lease_time=30)]
    if not all(w.invocations for w in tenants):
        return
    phased, fallback = run_both_paths(
        lambda: MultiTenantFusionSystem(small_config(), tenants))
    assert fingerprint(phased) == fingerprint(fallback), \
        "phase engine changed multi-tenant results"
