"""FUSION-Dx forwarding post-pass (repro.workloads.forwarding)."""

from repro.common.types import AccessType, FunctionTrace, MemOp, \
    WorkloadTrace
from repro.workloads.forwarding import forwarding_plan, total_forwarded


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def make(invocations):
    return WorkloadTrace(benchmark="b", invocations=invocations)


def test_producer_consumer_pair_is_planned():
    workload = make([
        FunctionTrace(name="p", benchmark="b", ops=[store(0), store(64)]),
        FunctionTrace(name="c", benchmark="b", ops=[load(0), store(64)]),
    ])
    plan = forwarding_plan(workload)
    # Block 0 is read-first by the consumer; block 64 is written first
    # (the consumer does not need the producer's value).
    assert plan == {0: [(0, 1)]}
    assert total_forwarded(plan) == 1


def test_same_axc_invocations_never_forward():
    workload = make([
        FunctionTrace(name="p", benchmark="b", ops=[store(0)]),
        FunctionTrace(name="p", benchmark="b", ops=[load(0)]),
    ])
    assert forwarding_plan(workload) == {}


def test_untouched_blocks_not_forwarded():
    workload = make([
        FunctionTrace(name="p", benchmark="b", ops=[store(0)]),
        FunctionTrace(name="c", benchmark="b", ops=[load(128)]),
    ])
    assert forwarding_plan(workload) == {}


def test_chain_forwards_pairwise():
    workload = make([
        FunctionTrace(name="a", benchmark="b", ops=[store(0)]),
        FunctionTrace(name="b_", benchmark="b", ops=[load(0), store(64)]),
        FunctionTrace(name="c", benchmark="b", ops=[load(64)]),
    ])
    plan = forwarding_plan(workload)
    assert plan == {0: [(0, 1)], 1: [(64, 2)]}


def test_plan_on_real_benchmark_points_forward(fft_tiny):
    plan = forwarding_plan(fft_tiny)
    assert total_forwarded(plan) > 0
    for index, entries in plan.items():
        producer = fft_tiny.invocations[index]
        producer_axc = fft_tiny.axc_of(producer.name)
        dirty = producer.dirty_blocks()
        for block, consumer in entries:
            assert consumer != producer_axc
            assert block in dirty
