"""Concurrency hardening: cache clear vs writers, shared journal
appends, and two engines racing over one cache root.

These are the regression tests for the concurrency bugfix sweep: the
advisory lock that keeps ``DiskCache.clear()`` from sweeping a live
writer's ``.tmp-*`` file, the single-``write()`` JSONL appends that
keep a shared ``REPRO_ENGINE_LOG`` parseable under concurrent engines,
and the end-to-end guarantee that two engines over one cache root
produce bit-identical results with no torn entries.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.sim import export
from repro.sim.engine import (DiskCache, EngineJournal, ExecutionEngine,
                              cache_key, read_journal)
from repro.sim.sweep import grid_points, lease_axis

FORK = multiprocessing.get_context("fork")


def exported(result):
    payload = export.result_to_dict(result)
    payload.pop("engine", None)
    return payload


# -- clear() vs a concurrent writer ---------------------------------------

class SlowPickle:
    """Pickling this sleeps, pinning a writer inside its temp-file +
    rename window (and thus inside the shared advisory lock)."""

    def __init__(self, delay=0.0):
        self.delay = delay

    def __reduce__(self):
        time.sleep(self.delay)
        return (SlowPickle, (0.0,))


def _slow_writer(root, key, delay):
    cache = DiskCache(root)
    try:
        cache.store(key, SlowPickle(delay))
    except BaseException:
        os._exit(1)
    os._exit(0)


def test_clear_does_not_race_concurrent_writer(tmp_path):
    """clear() in one process while another is mid-store(): the writer
    must finish its atomic rename (no exception, no orphan temp) and
    the surviving state must never be a torn entry."""
    root = tmp_path / "cache"
    key = "ab" + "0" * 62
    writer = FORK.Process(target=_slow_writer, args=(root, key, 1.0))
    writer.start()
    # Let the writer get inside the pickle (it sleeps 1s there while
    # holding the shared lock), then sweep underneath it.
    time.sleep(0.3)
    cache = DiskCache(root)
    cache.clear()
    writer.join(timeout=30)
    assert writer.exitcode == 0
    # No orphaned temp files either way the race resolved.
    assert list(cache._iter_temp_files()) == []
    # The entry either survived whole or is gone — never torn.
    fresh = DiskCache(root)
    loaded = fresh.load(key)
    assert loaded is None or isinstance(loaded, SlowPickle)
    assert fresh.corrupt_drops == 0


# -- shared REPRO_ENGINE_LOG ----------------------------------------------

def _journal_hammer(path, tag, count):
    os.environ["REPRO_ENGINE_LOG"] = str(path)
    journal = EngineJournal()
    for i in range(count):
        journal.emit("hammer", tag=tag, i=i, pad="x" * 256)
    os._exit(0)


def test_journal_appends_are_atomic_across_processes(tmp_path):
    """Four processes hammering one log file: every line parses, none
    are torn or interleaved mid-record."""
    log = tmp_path / "engine.log"
    workers = [FORK.Process(target=_journal_hammer, args=(log, tag, 50))
               for tag in "abcd"]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    records, torn = read_journal(log)
    assert torn == 0
    assert len(records) == 200
    for tag in "abcd":
        seen = sorted(r["i"] for r in records if r["tag"] == tag)
        assert seen == list(range(50))


def test_read_journal_skips_torn_lines(tmp_path):
    log = tmp_path / "engine.log"
    log.write_bytes(
        b'{"seq": 1, "event": "ok"}\n'
        b'{"seq": 2, "event": "torn-mid-wri'           # kill -9 mid-append
        b'\n{"seq": 3, "event": "also-ok"}\n'
        b'[1, 2, 3]\n'                                  # parses, not a dict
        b'\xff\xfe not utf-8 \xff\n')
    records, torn = read_journal(log)
    assert [r["event"] for r in records] == ["ok", "also-ok"]
    assert torn == 3


def test_read_journal_missing_file():
    assert read_journal("/nonexistent/engine.log") == ([], 0)


# -- two engines, one cache root ------------------------------------------

def _engine_child(root, systems, out_path):
    _points, requests = grid_points(systems, ["adpcm"],
                                    [lease_axis(100, 500)], "tiny")
    engine = ExecutionEngine(jobs=1, cache=DiskCache(root))
    results = engine.run_batch(requests, strict=False)
    payload = {
        "results": [exported(result) for result in results],
        "telemetry": engine.telemetry.snapshot(),
        "corrupt_drops": engine.cache.corrupt_drops,
    }
    out_path.write_text(json.dumps(payload))
    os._exit(0)


@pytest.mark.slow
def test_two_engines_shared_cache_root_stress(tmp_path):
    """Two engines race overlapping grids over one cache root: results
    are bit-identical to a serial single-engine run, no entry is torn,
    and neither engine recomputes beyond its own dedupe window."""
    shared_root = tmp_path / "shared-cache"
    grids = {"a": ["FUSION", "SHARED"], "b": ["SHARED", "SCRATCH"]}
    outs = {name: tmp_path / (name + ".json") for name in grids}
    workers = [FORK.Process(target=_engine_child,
                            args=(shared_root, systems, outs[name]))
               for name, systems in grids.items()]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=300)
        assert worker.exitcode == 0

    for name, systems in grids.items():
        payload = json.loads(outs[name].read_text())
        # Serial golden run over a private root.
        _points, requests = grid_points(systems, ["adpcm"],
                                        [lease_axis(100, 500)], "tiny")
        serial = ExecutionEngine(
            jobs=1, cache=DiskCache(tmp_path / "serial-cache"))
        golden = [exported(result)
                  for result in serial.run_batch(requests, strict=False)]
        assert payload["results"] == golden
        telemetry = payload["telemetry"]
        assert payload["corrupt_drops"] == 0
        assert telemetry["corrupt_drops"] == 0
        assert telemetry["failed_points"] == 0
        # Dedupe held inside each engine: at most one computation per
        # unique point of its own grid.
        assert telemetry["computed"] <= telemetry["unique"] == 4

    # Every entry left in the shared root is loadable (no torn pickles).
    reader = DiskCache(shared_root)
    all_systems = sorted({s for systems in grids.values()
                          for s in systems})
    _points, requests = grid_points(all_systems, ["adpcm"],
                                    [lease_axis(100, 500)], "tiny")
    loaded = [reader.load(cache_key(request.normalized()))
              for request in requests]
    assert all(result is not None for result in loaded)
    assert reader.corrupt_drops == 0
    assert list(reader._iter_temp_files()) == []
