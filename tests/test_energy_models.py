"""Energy models: CACTI-style caches and Aladdin-style datapaths."""

import pytest

from repro.common.config import CacheConfig, ScratchpadConfig, small_config, \
    large_config
from repro.common.units import KB
from repro.energy import accel_energy, cacti


def test_energy_grows_with_capacity():
    small = CacheConfig(4 * KB, 4)
    big = CacheConfig(64 * KB, 4)
    assert cacti.cache_access_energy_pj(big) > \
        cacti.cache_access_energy_pj(small)


def test_banking_reduces_energy():
    flat = CacheConfig(64 * KB, 8, banks=1)
    banked = CacheConfig(64 * KB, 8, banks=16)
    assert cacti.cache_access_energy_pj(banked) < \
        cacti.cache_access_energy_pj(flat)


def test_paper_anchor_l0x_vs_banked_l1x():
    """Lesson 3: a 4 kB L0X is ~1.5x more energy efficient than the
    heavily banked 64 kB L1X."""
    config = small_config()
    l0x = cacti.cache_access_energy_pj(config.tile.l0x)
    l1x = cacti.cache_access_energy_pj(config.tile.l1x)
    assert 1.2 < l1x / l0x < 1.9


def test_paper_anchor_large_l1x_twice_small():
    """Section 5.5: the 256 kB L1X costs ~2x the 64 kB L1X per access."""
    small = small_config().tile.l1x
    large = large_config().tile.l1x
    ratio = (cacti.cache_access_energy_pj(large)
             / cacti.cache_access_energy_pj(small))
    assert 1.7 < ratio < 2.3


def test_timestamp_tag_overhead_is_15_percent():
    plain = cacti.tag_array_energy_pj(4 * KB, 4)
    stamped = cacti.tag_array_energy_pj(4 * KB, 4, timestamp_bits=32)
    assert stamped / plain == pytest.approx(1.15)


def test_scratchpad_cheaper_than_same_size_cache():
    sp = cacti.scratchpad_access_energy_pj(ScratchpadConfig(4 * KB))
    cache = cacti.cache_access_energy_pj(CacheConfig(4 * KB, 4))
    assert sp < cache


def test_write_slightly_costlier_than_read():
    config = CacheConfig(4 * KB, 4)
    read = cacti.cache_access_energy_pj(config)
    write = cacti.cache_access_energy_pj(config, is_store=True)
    assert read < write < 1.2 * read


def test_llc_energy_anchor():
    """The 4 MB NUCA LLC lands near CACTI 6.0's ~0.5 nJ per access."""
    energy = cacti.llc_bank_access_energy_pj(small_config().host)
    assert 300 < energy < 800


def test_hierarchy_energy_ordering():
    config = small_config()
    l0x = cacti.cache_access_energy_pj(config.tile.l0x)
    l1x = cacti.cache_access_energy_pj(config.tile.l1x)
    llc = cacti.llc_bank_access_energy_pj(config.host)
    assert l0x < l1x < llc


def test_wire_length_formula():
    # Paper: Wire Length = 2 * sum(sqrt(area_i))
    assert cacti.wire_length_mm([1.0, 4.0]) == pytest.approx(2 * (1 + 2))


def test_compute_energy_anchors():
    assert accel_energy.INT_OP_PJ == pytest.approx(0.5)  # paper's figure
    assert accel_energy.compute_energy_pj(10, 0) == pytest.approx(5.0)
    assert accel_energy.compute_energy_pj(0, 10) == pytest.approx(
        10 * accel_energy.FP_OP_PJ)


def test_invocation_energy_counts_all_chunks():
    from repro.common.types import ComputeOp, FunctionTrace
    trace = FunctionTrace(name="f", benchmark="b", ops=[
        ComputeOp(int_ops=4), ComputeOp(fp_ops=2)])
    energy = accel_energy.invocation_energy_pj(trace)
    expected = (4 * accel_energy.INT_OP_PJ + 2 * accel_energy.FP_OP_PJ
                + accel_energy.INVOCATION_OVERHEAD_PJ)
    assert energy == pytest.approx(expected)
