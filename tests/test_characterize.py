"""Workload characterisation — Table 1 metrics (repro.workloads)."""

import pytest

from repro.common.types import AccessType, FunctionTrace, MemOp, \
    WorkloadTrace
from repro.workloads.characterize import characterize, function_mlp, \
    sharing_degree, working_set_kb


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def make_workload():
    producer = FunctionTrace(name="p", benchmark="b", lease_time=700,
                             ops=[store(0), store(64), store(128)])
    consumer = FunctionTrace(name="c", benchmark="b", lease_time=400,
                             ops=[load(0), load(64), store(256)])
    return WorkloadTrace(benchmark="b", invocations=[producer, consumer])


def test_sharing_degree_counts_cross_function_blocks():
    shr = sharing_degree(make_workload())
    # p touches {0,64,128}; c touches {0,64,256}; shared = {0,64}.
    assert shr["p"] == pytest.approx(100 * 2 / 3)
    assert shr["c"] == pytest.approx(100 * 2 / 3)


def test_sharing_merges_repeat_invocations():
    a1 = FunctionTrace(name="a", benchmark="b", ops=[load(0)])
    a2 = FunctionTrace(name="a", benchmark="b", ops=[load(64)])
    workload = WorkloadTrace(benchmark="b", invocations=[a1, a2])
    # One accelerator touching its own blocks twice is not sharing.
    assert sharing_degree(workload)["a"] == 0.0


def test_characterize_rows_and_time_shares():
    profiles = characterize(make_workload())
    assert [p.name for p in profiles] == ["p", "c"]
    assert sum(p.time_pct for p in profiles) == pytest.approx(100.0)
    assert profiles[0].lease == 700


def test_characterize_mix():
    profiles = {p.name: p for p in characterize(make_workload())}
    assert profiles["p"].st_pct == pytest.approx(100.0)
    assert profiles["c"].ld_pct == pytest.approx(100 * 2 / 3)


def test_repeat_invocations_merge_into_one_row():
    a1 = FunctionTrace(name="a", benchmark="b", ops=[load(0)])
    a2 = FunctionTrace(name="a", benchmark="b", ops=[load(0), load(64)])
    workload = WorkloadTrace(benchmark="b", invocations=[a1, a2])
    profiles = characterize(workload)
    assert len(profiles) == 1
    assert profiles[0].time_pct == pytest.approx(100.0)


def test_function_mlp_returns_pipe_mlp():
    mlp = function_mlp(make_workload())
    assert set(mlp) == {"p", "c"}
    assert all(value >= 1.0 for value in mlp.values())


def test_working_set_kb():
    # 4 distinct blocks of 64 B = 0.25 kB.
    assert working_set_kb(make_workload()) == pytest.approx(0.25)


def test_real_benchmark_profiles_are_sane(any_tiny_workload):
    profiles = characterize(any_tiny_workload)
    assert profiles, "every benchmark has at least one function"
    assert sum(p.time_pct for p in profiles) == pytest.approx(100.0)
    for profile in profiles:
        mix = (profile.int_pct + profile.fp_pct + profile.ld_pct
               + profile.st_pct)
        assert mix == pytest.approx(100.0)
        assert 0.0 <= profile.shr_pct <= 100.0
        assert profile.mlp >= 1.0
        assert 1.0 <= profile.pipe_mlp <= 8.0
        assert profile.lease > 0
