"""Smoke tests: every shipped example runs end to end.

Examples are the public API's contract; each is executed as a real
subprocess at the smallest workload size.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


def test_quickstart():
    proc = run_example("quickstart.py", "adpcm", "tiny")
    assert proc.returncode == 0, proc.stderr
    assert "FUSION results" in proc.stdout
    assert "energy breakdown" in proc.stdout
    assert "AX-TLB lookups" in proc.stdout


def test_image_pipeline():
    proc = run_example("image_pipeline.py")
    assert proc.returncode == 0, proc.stderr
    for system in ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx"):
        assert system in proc.stdout
    assert "vs SCRATCH" in proc.stdout


def test_compare_systems():
    proc = run_example("compare_systems.py", "tiny")
    assert proc.returncode == 0, proc.stderr
    assert "geomean" in proc.stdout
    assert "filtered" in proc.stdout


def test_design_space_sweep():
    proc = run_example("design_space_sweep.py", "adpcm", "tiny")
    assert proc.returncode == 0, proc.stderr
    assert "cache-size sweep" in proc.stdout
    assert "lease-length sweep" in proc.stdout


def test_efficiency_analysis():
    proc = run_example("efficiency_analysis.py", "tiny")
    assert proc.returncode == 0, proc.stderr
    assert "efficiency" in proc.stdout
    assert "mm^2" in proc.stdout


@pytest.mark.parametrize("name", ["quickstart.py", "image_pipeline.py",
                                  "compare_systems.py",
                                  "design_space_sweep.py",
                                  "efficiency_analysis.py"])
def test_examples_emit_no_stderr(name):
    args = {"quickstart.py": ("adpcm", "tiny"),
            "design_space_sweep.py": ("adpcm", "tiny"),
            "compare_systems.py": ("tiny",),
            "efficiency_analysis.py": ("tiny",)}.get(name, ())
    proc = run_example(name, *args)
    assert proc.returncode == 0
    assert proc.stderr.strip() == ""
