"""Property-based tests: the cache against a reference LRU model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.mem.cache import SetAssocCache

CONFIG = CacheConfig(size_bytes=512, ways=2)  # 4 sets, 8 lines
BLOCKS = st.integers(min_value=0, max_value=31).map(lambda i: i * 64)


class ReferenceLru:
    """Dict-of-lists reference model of a set-associative LRU cache."""

    def __init__(self, config):
        self.config = config
        self.sets = [[] for _ in range(config.num_sets)]

    def _set(self, block):
        return self.sets[self.config.set_index(block)]

    def touch(self, block):
        cache_set = self._set(block)
        if block in cache_set:
            cache_set.remove(block)
            cache_set.append(block)
            return True
        return False

    def insert(self, block):
        cache_set = self._set(block)
        victim = cache_set.pop(0) if len(cache_set) >= self.config.ways \
            else None
        cache_set.append(block)
        return victim

    def blocks(self):
        return sorted(b for s in self.sets for b in s)


@given(st.lists(BLOCKS, max_size=200))
@settings(max_examples=200)
def test_cache_matches_reference_lru(accesses):
    cache = SetAssocCache(CONFIG)
    reference = ReferenceLru(CONFIG)
    for block in accesses:
        hit = cache.lookup(block) is not None
        ref_hit = reference.touch(block)
        assert hit == ref_hit
        if not hit:
            victim = cache.insert(block)
            ref_victim = reference.insert(block)
            assert (victim.block if victim else None) == ref_victim
    assert sorted(cache.resident_blocks()) == reference.blocks()


@given(st.lists(BLOCKS, max_size=100))
@settings(max_examples=100)
def test_occupancy_bounded_by_capacity(accesses):
    cache = SetAssocCache(CONFIG)
    for block in accesses:
        if not cache.contains(block):
            cache.insert(block)
        assert cache.occupancy <= CONFIG.num_lines
        # Per-set bound as well.
        for cache_set in cache._sets:
            assert len(cache_set) <= CONFIG.ways


@given(st.lists(st.tuples(BLOCKS, st.booleans()), max_size=100))
@settings(max_examples=100)
def test_dirty_lines_are_exactly_the_stored_ones(ops):
    cache = SetAssocCache(CONFIG)
    dirty = set()
    for block, is_store in ops:
        line = cache.lookup(block)
        if line is None:
            victim = cache.insert(block, dirty=is_store)
            if victim is not None:
                dirty.discard(victim.block)
        elif is_store:
            line.dirty = True
        if is_store:
            dirty.add(block)
    assert {line.block for line in cache.dirty_lines()} == \
        {b for b in dirty if cache.contains(b)}
