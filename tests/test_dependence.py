"""Inter-invocation dependence analysis (repro.workloads.dependence)."""

from repro.common.types import AccessType, FunctionTrace, MemOp, \
    WorkloadTrace
from repro.workloads.dependence import invocation_dependences, \
    parallelism_profile


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


def make(*traces):
    return WorkloadTrace(benchmark="b", invocations=[
        FunctionTrace(name=name, benchmark="b", ops=list(ops))
        for name, ops in traces])


def test_raw_dependence():
    deps = invocation_dependences(make(
        ("p", [store(0)]), ("c", [load(0)])))
    assert deps == {0: set(), 1: {0}}


def test_war_dependence():
    deps = invocation_dependences(make(
        ("reader", [load(0)]), ("writer", [store(0)])))
    assert deps[1] == {0}


def test_waw_dependence():
    deps = invocation_dependences(make(
        ("w1", [store(0)]), ("w2", [store(0)])))
    assert deps[1] == {0}


def test_read_read_is_independent():
    deps = invocation_dependences(make(
        ("r1", [load(0)]), ("r2", [load(0)])))
    assert deps[1] == set()


def test_disjoint_blocks_are_independent():
    deps = invocation_dependences(make(
        ("a", [store(0)]), ("b", [store(128)])))
    assert deps[1] == set()


def test_same_axc_serialises_even_when_independent():
    deps = invocation_dependences(make(
        ("f", [store(0)]), ("f", [store(128)])))
    # Same function name -> same AXC -> program-order edge.
    assert deps[1] == {0}


def test_transitive_reduction():
    deps = invocation_dependences(make(
        ("a", [store(0)]),
        ("b", [load(0), store(64)]),
        ("c", [load(0), load(64)])))
    # c depends on a transitively through b: only the b edge remains.
    assert deps[2] == {1}


def test_parallelism_profile_chain():
    crit, total, width = parallelism_profile(make(
        ("a", [store(0)]), ("b", [load(0), store(64)]),
        ("c", [load(64)])))
    assert (crit, total, width) == (3, 3, 1)


def test_parallelism_profile_diamond():
    crit, total, width = parallelism_profile(make(
        ("src", [store(0), store(64)]),
        ("left", [load(0), store(128)]),
        ("right", [load(64), store(192)]),
        ("sink", [load(128), load(192)])))
    assert (crit, total, width) == (3, 4, 2)


def test_real_workloads_have_acyclic_graphs(any_tiny_workload):
    deps = invocation_dependences(any_tiny_workload)
    # A topological order exists (the program order is one), so every
    # dependence must point backwards.
    for j, sources in deps.items():
        assert all(i < j for i in sources)
