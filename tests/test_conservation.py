"""Cross-system conservation laws.

The workload trace is the single source of truth: every system replays
the same operations, so several quantities must agree across designs
regardless of how differently they move the data.
"""

import pytest

from repro.sim.simulator import run
from repro.workloads.registry import BENCHMARKS, build_workload

SYSTEMS = ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx", "IDEAL",
           "FUSION-PIPE")


def mem_ops(result):
    return sum(v for k, v in result.stats.items()
               if k.endswith(".mem_ops"))


def compute_ops(result):
    return sum(v for k, v in result.stats.items()
               if k.endswith(".int_ops") or k.endswith(".fp_ops"))


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_every_system_replays_the_same_memory_ops(bench):
    counts = {system: mem_ops(run(system, bench, "tiny"))
              for system in SYSTEMS}
    expected = sum(t.num_mem_ops
                   for t in build_workload(bench, "tiny").invocations)
    assert set(counts.values()) == {expected}


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_every_system_performs_the_same_compute(bench):
    counts = {system: compute_ops(run(system, bench, "tiny"))
              for system in SYSTEMS}
    assert len(set(counts.values())) == 1


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_compute_energy_identical_across_systems(bench):
    energies = {system: run(system, bench, "tiny").energy["compute"]
                for system in SYSTEMS}
    baseline = energies["SCRATCH"]
    for system, value in energies.items():
        assert value == pytest.approx(baseline), system


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_invocation_count_identical(bench):
    workload = build_workload(bench, "tiny")
    expected = len(workload.invocations)
    for system in SYSTEMS:
        result = run(system, bench, "tiny")
        total = sum(v for k, v in result.stats.items()
                    if k.startswith("invocation.") and
                    k.endswith(".count"))
        assert total == expected, system


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_ideal_is_the_cycle_floor_and_scratch_exec_matches(bench):
    """SCRATCH's pure-execution time (cycles minus DMA) equals IDEAL's:
    both serve every access in one cycle."""
    ideal = run("IDEAL", bench, "tiny")
    scratch = run("SCRATCH", bench, "tiny")
    exec_cycles = scratch.accel_cycles - scratch.stat("dma.cycles")
    assert exec_cycles == pytest.approx(ideal.accel_cycles, rel=0.01)
