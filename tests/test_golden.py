"""Golden-value regression tests.

The simulator is fully deterministic, so every (system, benchmark)
pair's headline numbers are locked exactly.  A change to any model —
latency, energy, protocol, kernel — that shifts results will trip these
tests; if the shift is intentional, regenerate the goldens:

    python -c "import tests.test_golden as g; g.regenerate()"

and review the diff like any other code change.
"""

import json
import pathlib

import pytest

import repro

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_tiny.json"
SYSTEMS = ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx", "IDEAL",
           "FUSION-PIPE")


def load_golden():
    with open(GOLDEN_PATH) as fileobj:
        return json.load(fileobj)


def current(system, bench):
    result = repro.run(system, bench, "tiny")
    return {
        "accel_cycles": result.accel_cycles,
        "energy_pj": round(result.energy.total_pj, 3),
        "l1x_misses": result.stat("l1x.misses"),
        "ax_tlb_lookups": result.ax_tlb_lookups,
    }


def regenerate():
    golden = {}
    for bench in repro.BENCHMARKS:
        for system in SYSTEMS:
            golden["{}:{}".format(system, bench)] = current(system, bench)
    with open(GOLDEN_PATH, "w") as fileobj:
        json.dump(golden, fileobj, indent=1, sort_keys=True)


def test_golden_file_is_complete():
    golden = load_golden()
    assert len(golden) == len(SYSTEMS) * len(repro.BENCHMARKS)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("bench", repro.BENCHMARKS)
def test_results_match_golden(system, bench):
    golden = load_golden()["{}:{}".format(system, bench)]
    measured = current(system, bench)
    assert measured == golden, (
        "model output drifted from the golden values; if intentional, "
        "regenerate tests/golden_tiny.json (see module docstring)")
