"""Property-based tests: AXC cycle-model timing bounds."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.core import AxcCore
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp

ops = st.lists(st.one_of(
    st.builds(MemOp, kind=st.sampled_from(list(AccessType)),
              addr=st.integers(0, 63).map(lambda i: i * 64)),
    st.builds(ComputeOp, int_ops=st.integers(1, 16))),
    max_size=60)
latencies = st.integers(1, 40)
mlps = st.integers(1, 8)


def run_core(trace_ops, latency, mlp, issue_interval=1):
    core = AxcCore(0, StatsRegistry())
    trace = FunctionTrace(name="f", benchmark="b", ops=trace_ops)
    return core.run(trace, 0, lambda op, now: latency, mlp,
                    issue_interval)


@given(ops, latencies, mlps)
@settings(max_examples=150)
def test_end_time_lower_bounds(trace_ops, latency, mlp):
    end = run_core(trace_ops, latency, mlp)
    mem = sum(1 for op in trace_ops if isinstance(op, MemOp))
    compute = sum(max(1, math.ceil(op.total / 4)) for op in trace_ops
                  if isinstance(op, ComputeOp))
    # Issue slots + compute are a hard floor...
    assert end >= mem + compute
    # ...and so is Little's law over distinct outstanding slots.
    if mem:
        assert end >= latency  # the last access must complete
        assert end + 1e-9 >= mem * latency / max(mlp, mem)


@given(ops, mlps)
@settings(max_examples=100)
def test_end_time_monotonic_in_latency(trace_ops, mlp):
    fast = run_core(trace_ops, 2, mlp)
    slow = run_core(trace_ops, 20, mlp)
    assert slow >= fast


@given(ops, latencies)
@settings(max_examples=100)
def test_end_time_monotonic_in_mlp(trace_ops, latency):
    serial = run_core(trace_ops, latency, 1)
    parallel = run_core(trace_ops, latency, 8)
    assert parallel <= serial


@given(ops, latencies, mlps)
@settings(max_examples=100)
def test_issue_interval_monotonic(trace_ops, latency, mlp):
    tight = run_core(trace_ops, latency, mlp, issue_interval=1)
    throttled = run_core(trace_ops, latency, mlp, issue_interval=2)
    assert throttled >= tight


@given(ops, latencies, mlps, st.integers(0, 10_000))
@settings(max_examples=100)
def test_start_time_shifts_end_exactly(trace_ops, latency, mlp, start):
    core_a = AxcCore(0, StatsRegistry())
    core_b = AxcCore(0, StatsRegistry())
    trace = FunctionTrace(name="f", benchmark="b", ops=trace_ops)
    end_zero = core_a.run(trace, 0, lambda op, now: latency, mlp)
    end_start = core_b.run(trace, start,
                           lambda op, now: latency, mlp)
    assert end_start == end_zero + start
