"""The experiment layer (repro.sim.experiments, repro.sim.reporting)."""

import pytest

from repro.sim import experiments
from repro.sim.reporting import ExperimentTable

TINY = dict(size="tiny")
ONE = dict(size="tiny", benchmarks=("adpcm",))


def test_reporting_render_aligns_columns():
    table = ExperimentTable("X", "title", ["A", "Long header"])
    table.add_row(1, 2.5)
    table.add_row("wide cell", 10000.0)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "== X : title =="
    assert len({len(line) for line in lines[1:4]}) == 1  # aligned


def test_reporting_float_formats():
    table = ExperimentTable("X", "t", ["v"])
    table.add_row(0.1234)
    table.add_row(12.34)
    table.add_row(1234.5)
    assert table.column("v") == ["0.12", "12.3", "1234"]


def test_reporting_notes_rendered():
    table = ExperimentTable("X", "t", ["v"])
    table.add_note("hello")
    assert "note: hello" in table.render()


def test_table1_has_a_row_per_function():
    table = experiments.table1(**ONE)
    assert len(table.rows) == 2  # coder + decoder
    assert table.headers[:2] == ["Benchmark", "Function"]


def test_table2_lists_components():
    table = experiments.table2()
    components = table.column("Component")
    assert "L0X" in components and "L1X" in components


def test_table3_percentages_sum_per_benchmark():
    table = experiments.table3(**ONE)
    total = sum(float(cell) for cell in table.column("%En"))
    assert total == pytest.approx(100.0, abs=0.5)


def test_table4_reports_both_policies():
    table = experiments.table4(**ONE)
    wt = float(table.column("Write-Through")[0])
    wb = float(table.column("Writeback")[0])
    assert wt > 0 and wb > 0


def test_table5_reports_forwarding():
    table = experiments.table5(size="tiny", benchmarks=("fft",))
    assert int(table.column("#FWD Blocks")[0]) > 0


def test_table6_counts_lookups():
    table = experiments.table6(**ONE)
    assert int(table.column("AX-TLB")[0]) > 0
    assert int(table.column("AX-RMAP")[0]) > 0


def test_figure6_energy_normalises_scratch_to_one():
    table = experiments.figure6_energy(**ONE)
    scratch_row = [row for row in table.rows if row[1] == "SCRATCH"][0]
    assert float(scratch_row[2]) == pytest.approx(1.0)


def test_figure6_performance_rows():
    table = experiments.figure6_performance(**ONE)
    assert table.column("SCRATCH") == ["1.00"]
    assert float(table.column("FUSION")[0]) > 0


def test_figure6_traffic_shared_heaviest_on_axc_link():
    table = experiments.figure6_traffic(**ONE)
    by_system = {row[1]: int(row[2]) for row in table.rows}
    assert by_system["SHARED"] > by_system["FUSION"] > \
        by_system["SCRATCH"]


def test_figure6_dma_only_scratch():
    table = experiments.figure6_dma(**ONE)
    assert float(table.column("DMA(kB)")[0]) > 0
    assert float(table.column("WSet(kB)")[0]) > 0


def test_figure7_compares_configs():
    table = experiments.figure7(**ONE)
    assert float(table.column("Energy L/S")[0]) > 0


def test_headline_builds():
    table = experiments.headline(size="tiny")
    assert len(table.rows) == 6


def test_all_experiments_registry_complete():
    assert set(experiments.ALL_EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "fig6a", "fig6b", "fig6c", "fig6d", "fig7", "headline",
        "policy"}


def test_geomean():
    assert experiments._geomean([1, 4]) == pytest.approx(2.0)
    assert experiments._geomean([]) == 0.0
    assert experiments._geomean([0, 2]) == pytest.approx(2.0)


def test_geomean_warns_on_all_non_positive_input():
    with pytest.warns(RuntimeWarning, match="all-non-positive"):
        assert experiments._geomean([0, -3]) == 0.0
    with pytest.warns(RuntimeWarning):
        assert experiments._geomean([0]) == 0.0


def test_table4_empty_working_set_reports_zero_dirty(monkeypatch):
    from repro.common.types import WorkloadTrace
    from repro.sim.results import RunResult

    def fake_run(system, name, size, config=None):
        return RunResult(system=system, benchmark=name,
                         config_name="small", accel_cycles=1,
                         total_cycles=1, stats={})

    monkeypatch.setattr(experiments, "run", fake_run)
    monkeypatch.setattr(experiments, "build_workload",
                        lambda name, size: WorkloadTrace(benchmark=name))
    monkeypatch.setattr(experiments, "_prefetch", lambda requests: None)
    table = experiments.table4(size="tiny", benchmarks=("fft",))
    assert table.column("%DirtyBlocks") == ["0"]  # not ZeroDivisionError


def test_prefetch_warms_every_simulating_experiment():
    from repro.sim.engine import get_engine
    snapshot = experiments.prefetch(size="tiny", benchmarks=("adpcm",))
    computed_after_warm = snapshot["computed"]
    # A rerun of the same grids is served entirely from cache.
    again = experiments.prefetch(size="tiny", benchmarks=("adpcm",))
    assert again["computed"] == computed_after_warm
    assert again["memory_hits"] > snapshot["memory_hits"]
    # The warmed experiments now assemble without re-simulating.
    before = get_engine().telemetry.computed
    experiments.figure6_performance(size="tiny", benchmarks=("adpcm",))
    assert get_engine().telemetry.computed == before


def test_experiment_grids_cover_every_simulating_experiment():
    assert set(experiments.EXPERIMENT_GRIDS) == (
        set(experiments.ALL_EXPERIMENTS) - {"table1", "table2"})
    for name, grid in experiments.EXPERIMENT_GRIDS.items():
        requests = grid("tiny")
        assert requests, name
        for request in requests:
            assert request.size == "tiny"
