"""Multi-tile FUSION (repro.systems.multitile)."""

import pytest

from repro.common.config import small_config
from repro.systems.multitenant import MultiTenantFusionSystem
from repro.systems.multitile import MultiTileFusionSystem
from repro.workloads.registry import build_workload


def pair(size="tiny"):
    return [build_workload("adpcm", size), build_workload("filter", size)]


def test_each_workload_gets_its_own_tile():
    system = MultiTileFusionSystem(small_config(), pair())
    assert len(system.tiles) == 2
    assert system.tiles[0].name == "tile0"
    assert system.tiles[1].name == "tile1"
    result = system.run()
    assert result.benchmark == "adpcm|filter"
    assert result.accel_cycles > 0


def test_requires_a_workload():
    with pytest.raises(ValueError):
        MultiTileFusionSystem(small_config(), [])


def test_tile_stats_are_namespaced():
    result = MultiTileFusionSystem(small_config(), pair()).run()
    assert result.stat("tile0.l1x.accesses") > 0
    assert result.stat("tile1.l1x.accesses") > 0
    assert "l1x.accesses" not in result.stats  # no un-namespaced leak


def test_energy_accounting_folds_namespaces():
    result = MultiTileFusionSystem(small_config(), pair()).run()
    folded = result.energy["l1x"]
    raw = (result.stat("tile0.l1x.energy_pj")
           + result.stat("tile1.l1x.energy_pj"))
    assert folded == pytest.approx(raw)
    assert folded > 0


def test_dedicated_tiles_eliminate_pid_conflicts():
    workloads = pair()
    shared = MultiTenantFusionSystem(small_config(), workloads).run()
    dedicated = MultiTileFusionSystem(small_config(), workloads).run()
    assert shared.stat("l1x.pid_conflicts") > 0
    total_conflicts = sum(
        dedicated.stat("tile{}.l1x.pid_conflicts".format(i), 0)
        for i in range(2))
    assert total_conflicts == 0


def test_dedicated_tiles_beat_time_sharing():
    workloads = pair()
    shared = MultiTenantFusionSystem(small_config(), workloads).run()
    dedicated = MultiTileFusionSystem(small_config(), workloads).run()
    assert dedicated.accel_cycles <= shared.accel_cycles


def test_both_tiles_register_as_mesi_agents():
    system = MultiTileFusionSystem(small_config(), pair())
    assert set(system.host_mem.tile_agents) == {"tile0", "tile1"}
    assert system.host_mem.tile_agents["tile0"] is system.tiles[0].l1x


def test_host_consume_pulls_from_the_right_tile():
    result = MultiTileFusionSystem(small_config(), pair()).run()
    # Each process's outputs were forwarded out of its own tile.
    assert result.stat("tile0.l1x.fwd_evictions") > 0
    assert result.stat("tile1.l1x.fwd_evictions") > 0


def test_inter_tile_exclusivity_recall():
    """If two tiles ever fetch the same physical block, the directory
    recalls the first tile's copy before granting the second."""
    from repro.common.stats import StatsRegistry
    from repro.coherence.mesi import HostMemorySystem
    from conftest import RecordingTileAgent
    mem = HostMemorySystem(small_config(), StatsRegistry())
    agent_a = RecordingTileAgent()
    agent_b = RecordingTileAgent()
    mem.register_tile("tile0", agent_a)
    mem.register_tile("tile1", agent_b)
    mem.fetch_for_tile(0x40, tile="tile0")
    mem.fetch_for_tile(0x40, tile="tile1")
    assert len(agent_a.requests) == 1   # recalled
    assert mem.directory.entry(0x40).owner == "tile1"
