"""Litmus harness (repro.check.litmus): exact legal-outcome sets."""

from dataclasses import replace

import pytest

from repro.check import LITMUS_BY_NAME, LITMUS_TESTS, MUTATIONS, run_litmus


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_litmus_outcomes_match_legal_set(test):
    result = run_litmus(test)
    assert result.ok, (sorted(map(sorted, result.illegal)),
                       sorted(map(sorted, result.missing)))
    assert result.violations == ()
    assert result.interleavings > 0
    assert result.seen == test.legal


def test_suite_covers_the_paper_shapes():
    assert set(LITMUS_BY_NAME) == {
        "message-passing", "ping-pong", "producer-consumer",
        "lease-expiry-race", "phase-boundary", "replay-window"}


def test_outcome_formatting():
    test = LITMUS_BY_NAME["ping-pong"]
    outcome = test.outcome_of(
        observations=(("host", 2, 0, "host.w1"),),
        final_values=((0, "host.w1"),))
    assert outcome == frozenset({"host#2:b0=host.w1",
                                 "final:b0=host.w1"})


def test_exact_equality_fails_on_missing_outcome():
    """Removing a legal outcome must fail the test: a protocol change
    that *loses* behaviours is flagged like one that adds illegal ones."""
    test = LITMUS_BY_NAME["producer-consumer"]
    narrowed = replace(test,
                       legal=frozenset(list(test.legal)[:1]))
    result = run_litmus(narrowed)
    assert not result.ok
    assert result.illegal or result.missing


def test_forward_mutation_breaks_producer_consumer():
    test = LITMUS_BY_NAME["producer-consumer"]
    result = run_litmus(test, mutation=MUTATIONS["forward-keep-dirty"])
    assert not result.ok
    # Caught as a state violation (duplicated dirty data), reported
    # with the litmus result.
    assert result.violations
    assert result.violations[0].invariant in ("swmr", "conservation")


def test_replay_mutation_breaks_replay_window():
    """A guard matching under a dead epoch is caught by the replay
    rung's shadow per-op check, not by outcome divergence alone."""
    test = LITMUS_BY_NAME["replay-window"]
    result = run_litmus(test,
                        mutation=MUTATIONS["stale-replay-fingerprint"])
    assert not result.ok
    assert result.violations
    assert result.violations[0].invariant == "stale-epoch-use"


def test_replay_window_outcomes_are_monotone():
    """The checked legal set itself encodes the rung's contract: no
    replayed window resurrects ``init`` after an earlier observation
    saw the host's store."""
    test = LITMUS_BY_NAME["replay-window"]
    for outcome in test.legal:
        seen_store = False
        for seq in (1, 2, 3, 4):
            entry = next(o for o in outcome
                         if o.startswith("axc0#{}".format(seq)))
            if seen_store:
                assert entry.endswith("host.w1")
            seen_store = seen_store or entry.endswith("host.w1")


def test_lease_expiry_never_reserves_expired_epoch():
    """The checked legal set itself encodes the paper's claim: no
    outcome re-serves the first epoch's value after expiry."""
    test = LITMUS_BY_NAME["lease-expiry-race"]
    for outcome in test.legal:
        first = next(o for o in outcome if o.startswith("axc0#1"))
        second = next(o for o in outcome if o.startswith("axc0#2"))
        # If the first read already saw the host's write, the second
        # (post-expiry) read cannot travel back to init.
        if first.endswith("host.w1"):
            assert second.endswith("host.w1")
