"""The ACC lease protocol (repro.coherence.acc) — FUSION's core."""

from collections import namedtuple

import pytest

from repro.common.config import WritePolicy, small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, MemOp
from repro.coherence.acc import AccL0XController, AccL1XController
from repro.coherence.mesi import HostMemorySystem
from repro.interconnect.link import Link
from repro.mem.tlb import PageTable

Tile = namedtuple("Tile", "l1x l0xa l0xb mem stats page_table")

#: Stride between addresses that share an L0X set (4 kB 4-way, 16 sets).
L0X_SET_STRIDE = 64 * 16
#: Stride between addresses that share an L1X set (64 kB 8-way, 128 sets).
L1X_SET_STRIDE = 64 * 128

LEASE = 500


def make_tile(config=None):
    config = config or small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    page_table = PageTable()
    l1x = AccL1XController(config, mem, page_table, stats)
    mem.tile_agent = l1x
    axc_link = Link("axc_l1x", config.link.axc_l1x_pj_per_byte, stats)
    fwd_link = Link("fwd", config.link.l0x_l0x_pj_per_byte, stats)
    l0xa = AccL0XController(0, config, l1x, axc_link, fwd_link, stats)
    l0xb = AccL0XController(1, config, l1x, axc_link, fwd_link, stats)
    return Tile(l1x, l0xa, l0xb, mem, stats, page_table)


def load(addr):
    return MemOp(AccessType.LOAD, addr)


def store(addr):
    return MemOp(AccessType.STORE, addr)


# -- basic epochs ------------------------------------------------------------

def test_load_miss_fills_both_levels_then_hits():
    tile = make_tile()
    miss_latency = tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    assert tile.stats.get("l0x.axc0.misses") == 1
    assert tile.l1x.cache.contains(0x40)
    assert tile.l0xa.cache.contains(0x40)
    hit_latency = tile.l0xa.access(load(0x44), now=10, lease=LEASE)
    assert tile.stats.get("l0x.axc0.hits") == 1
    assert hit_latency < miss_latency


def test_lease_expiry_is_the_invalidation():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    line = tile.l0xa.cache.lookup(0x40, touch=False)
    # Past the lease the line is invalid even though it is resident.
    tile.l0xa.access(load(0x40), now=line.lease + 1, lease=LEASE)
    assert tile.stats.get("l0x.axc0.misses") == 2


def test_read_epoch_sets_gtime():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    line = tile.l1x.cache.lookup(0x40, touch=False)
    assert line.gtime is not None and line.gtime >= LEASE


def test_gtime_is_max_over_epochs():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    first_gtime = tile.l1x.cache.lookup(0x40, touch=False).gtime
    # A later epoch extends GTIME; an earlier one must never shrink it.
    tile.l0xb.access(load(0x40), now=first_gtime, lease=LEASE)
    second_gtime = tile.l1x.cache.lookup(0x40, touch=False).gtime
    assert second_gtime >= first_gtime + LEASE


def test_concurrent_read_epochs_do_not_stall():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    tile.l0xb.access(load(0x40), now=1, lease=LEASE)
    assert tile.stats.get("l1x.write_epoch_stalls") == 0


# -- write epochs -------------------------------------------------------------

def test_store_miss_takes_write_epoch_and_locks():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    line = tile.l1x.cache.lookup(0x40, touch=False)
    assert line.write_epoch_end is not None
    assert tile.stats.get("l1x.write_epochs") == 1
    assert tile.l0xa.cache.lookup(0x40, touch=False).state == "W"
    assert tile.l0xa.cache.lookup(0x40, touch=False).dirty


def test_reader_stalls_on_foreign_write_epoch():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    latency = tile.l0xb.access(load(0x40), now=10, lease=LEASE)
    assert tile.stats.get("l1x.write_epoch_stalls") == 1
    assert latency > LEASE / 2  # stalled until the epoch expires


def test_writeback_releases_the_lock():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    tile.l0xa.flush_dirty(now=50)
    line = tile.l1x.cache.lookup(0x40, touch=False)
    assert line.write_epoch_end is None
    assert line.dirty
    tile.l0xb.access(load(0x40), now=60, lease=LEASE)
    assert tile.stats.get("l1x.write_epoch_stalls") == 0


def test_store_on_read_lease_upgrades():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    tile.l0xa.access(store(0x40), now=10, lease=LEASE)
    assert tile.stats.get("l0x.axc0.upgrades") == 1
    assert tile.stats.get("l1x.write_epochs") == 1
    assert tile.l0xa.cache.lookup(0x40, touch=False).state == "W"


def test_write_through_store_updates_l1x_directly():
    config = small_config().with_l0x_write_policy(WritePolicy.WRITE_THROUGH)
    tile = make_tile(config)
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    assert tile.stats.get("l1x.write_through_updates") == 1
    assert tile.stats.get("link.axc_l1x.write_flits") == 1
    # The L0X line stays clean: nothing to write back later.
    assert not tile.l0xa.cache.lookup(0x40, touch=False).dirty
    assert tile.l1x.cache.lookup(0x40, touch=False).dirty


# -- self-downgrade ------------------------------------------------------------

def test_capacity_eviction_writes_back_dirty_line():
    tile = make_tile()
    ways = tile.l0xa.config.ways
    for i in range(ways + 1):
        tile.l0xa.access(store(0x40 + i * L0X_SET_STRIDE), now=i,
                         lease=LEASE)
    assert tile.stats.get("l0x.axc0.writebacks") == 1
    assert tile.stats.get("l1x.l0x_writebacks") == 1


def test_clean_lines_drop_silently():
    tile = make_tile()
    ways = tile.l0xa.config.ways
    before = tile.stats.get("link.axc_l1x.data_transfers")
    for i in range(ways + 1):
        tile.l0xa.access(load(0x40 + i * L0X_SET_STRIDE), now=i,
                         lease=LEASE)
    # Only fills crossed the link; the clean victim sent nothing.
    after = tile.stats.get("link.axc_l1x.data_transfers")
    assert after - before == ways + 1
    assert tile.stats.get("l0x.axc0.writebacks") == 0


def test_flush_dirty_cleans_but_keeps_lines():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    tile.l0xa.access(store(0x80), now=1, lease=LEASE)
    tile.l0xa.flush_dirty(now=10)
    assert tile.stats.get("l0x.axc0.writebacks") == 2
    assert tile.l0xa.cache.contains(0x40)
    assert not tile.l0xa.cache.lookup(0x40, touch=False).dirty
    # A re-read within the lease still hits.
    tile.l0xa.access(load(0x40), now=20, lease=LEASE)
    assert tile.stats.get("l0x.axc0.hits") == 1


def test_expired_dirty_line_self_downgrades_before_renewal():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    expiry = tile.l0xa.cache.lookup(0x40, touch=False).lease
    tile.l0xa.access(load(0x40), now=expiry + 1, lease=LEASE)
    assert tile.stats.get("l0x.axc0.writebacks") == 1
    assert tile.l1x.cache.lookup(0x40, touch=False).dirty


# -- MESI integration ------------------------------------------------------------

def test_forwarded_request_is_filtered_from_l0x():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    pblock = tile.l1x.cache.lookup(0x40, touch=False).paddr
    stall, dirty = tile.l1x.handle_forwarded_request(pblock, now=LEASE * 2,
                                                     is_store=False)
    assert not dirty
    assert stall == 0  # gtime already expired
    assert not tile.l1x.cache.contains(0x40)
    # The private L0X was never probed — its (stale, lease-bounded)
    # copy is untouched, exactly the paper's filtering property.
    assert tile.l0xa.cache.contains(0x40)
    assert tile.stats.get("l1x.fwd_evictions") == 1


def test_forwarded_request_stalls_until_gtime():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    line = tile.l1x.cache.lookup(0x40, touch=False)
    stall, _ = tile.l1x.handle_forwarded_request(line.paddr, now=10,
                                                 is_store=True)
    assert stall == line.gtime - 10
    assert tile.stats.get("l1x.fwd_gtime_stalls") == 1


def test_forwarded_request_reports_dirty_data():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    tile.l0xa.flush_dirty(now=10)
    line = tile.l1x.cache.lookup(0x40, touch=False)
    _, dirty = tile.l1x.handle_forwarded_request(line.paddr,
                                                 now=LEASE * 2,
                                                 is_store=False)
    assert dirty


def test_forwarded_request_for_uncached_block_tolerated():
    tile = make_tile()
    stall, dirty = tile.l1x.handle_forwarded_request(0x999000, now=0,
                                                     is_store=False)
    assert (stall, dirty) == (0, False)
    assert tile.stats.get("l1x.fwd_misses") == 1


def test_l1x_eviction_stalls_on_live_gtime():
    tile = make_tile()
    ways = tile.l1x.config.ways
    for i in range(ways + 1):
        tile.l0xa.access(load(0x40 + i * L1X_SET_STRIDE), now=i,
                         lease=10_000)
    assert tile.stats.get("l1x.gtime_eviction_stalls") >= 1
    assert tile.stats.get("l1x.evictions") == 1


def test_ax_tlb_touched_only_on_l1x_misses():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    assert tile.stats.get("ax_tlb.lookups") == 1
    tile.l0xb.access(load(0x40), now=1, lease=LEASE)  # L1X hit
    assert tile.stats.get("ax_tlb.lookups") == 1


def test_late_writeback_after_l1x_eviction():
    tile = make_tile()
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    tile.l1x.cache.invalidate(0x40)  # simulate a crossed eviction
    latency = tile.l1x.writeback_from_l0x(0x40, now=0)
    assert latency > 0
    assert tile.stats.get("l1x.late_writebacks") == 1


# -- FUSION-Dx forwarding ------------------------------------------------------------

def test_forward_line_delivers_pending_hit():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    assert tile.l0xa.forward_line(0x40, tile.l0xb, now=10, lease=LEASE)
    assert tile.stats.get("l0x.axc0.lines_forwarded") == 1
    assert tile.stats.get("link.fwd.data_transfers") == 1
    # Producer no longer holds the line; consumer's first touch hits.
    assert not tile.l0xa.cache.contains(0x40)
    tile.l0xb.access(load(0x40), now=20, lease=LEASE)
    assert tile.stats.get("l0x.axc1.forward_hits") == 1
    assert tile.stats.get("l0x.axc1.misses") == 0
    assert tile.l0xb.cache.lookup(0x40, touch=False).dirty


def test_forward_line_refuses_clean_or_absent():
    tile = make_tile()
    assert not tile.l0xa.forward_line(0x40, tile.l0xb, 0, LEASE)
    tile.l0xa.access(load(0x40), now=0, lease=LEASE)
    assert not tile.l0xa.forward_line(0x40, tile.l0xb, 0, LEASE)


def test_forward_hook_fires_on_self_downgrade():
    tile = make_tile()

    def hook(l0x, line, now):
        l0x.forward_line_obj(line, tile.l0xb, now)
        return True

    tile.l0xa.forward_hook = hook
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    tile.l0xa.flush_dirty(now=10)
    # Forwarded, not written back.
    assert tile.stats.get("l0x.axc0.writebacks") == 0
    assert tile.stats.get("l0x.axc0.lines_forwarded") == 1
    assert not tile.l1x.cache.lookup(0x40, touch=False).dirty


def test_unclaimed_forward_drains_at_consumer_flush():
    tile = make_tile()
    tile.l0xa.access(store(0x40), now=0, lease=LEASE)
    tile.l0xa.forward_line(0x40, tile.l0xb, now=10, lease=LEASE)
    tile.l0xb.flush_dirty(now=20)  # consumer never touched the block
    assert tile.stats.get("l0x.axc1.unclaimed_forwards") == 1
    assert tile.l1x.cache.lookup(0x40, touch=False).dirty


# -- synonyms ------------------------------------------------------------------

def test_synonym_evicted_from_tile():
    tile = make_tile()
    vaddr_a = 0x40
    # Map a second virtual page onto the first one's frame; the synonym
    # must share the page offset to alias at block granularity.
    paddr = tile.page_table.translate(vaddr_a)
    vaddr_b = 0x200040
    vpn_b = vaddr_b >> 12
    tile.page_table._map[vpn_b] = paddr >> 12
    tile.l0xa.access(load(vaddr_a), now=0, lease=LEASE)
    assert tile.l1x.cache.contains(vaddr_a)
    tile.l0xb.access(load(vaddr_b), now=1, lease=LEASE)
    # Only one synonym may live in the tile (Appendix rule).
    assert not tile.l1x.cache.contains(vaddr_a)
    assert tile.l1x.cache.contains(vaddr_b)
    assert tile.stats.get("ax_rmap.synonym_evictions") == 1
