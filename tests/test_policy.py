"""The policy subsystem (repro.policy + repro.systems.policy).

Selectors, telemetry extraction, the POLICY system's recording path,
and the oracle/bandit engine on tiny workloads.
"""

import pytest

from repro.common.config import PolicyConfig, small_config
from repro.common.errors import ConfigError
from repro.policy.engine import evaluate_selectors, gap_closed, \
    policy_grid, train_bandit
from repro.policy.selectors import BanditSelector, ScheduleSelector, \
    StaticSelector, _bucket, make_selector
from repro.policy.telemetry import telemetry_from_delta
from repro.systems import SYSTEMS
from repro.workloads.characterize import invocation_features
from repro.workloads.registry import build_workload


def _policy_run(bench, **policy_kwargs):
    config = small_config().with_policy(**policy_kwargs)
    workload = build_workload(bench, "tiny")
    system = SYSTEMS["POLICY"](config, workload)
    return system, system.run()


# -- config ------------------------------------------------------------------

def test_policy_config_validation():
    with pytest.raises(ConfigError):
        PolicyConfig(selector="roulette")
    with pytest.raises(ConfigError):
        PolicyConfig(selector="schedule", schedule=())
    with pytest.raises(ConfigError):
        PolicyConfig(epsilon=1.5)
    with pytest.raises(ConfigError):
        PolicyConfig(strategies=())
    with pytest.raises(ConfigError):
        PolicyConfig(episodes=0)
    assert PolicyConfig(schedule=["fusion"]).schedule == ("fusion",)


# -- selectors ---------------------------------------------------------------

def test_bucket_is_power_of_four_magnitude():
    assert _bucket(-1) == -1
    assert _bucket(0) == 0
    assert _bucket(3) == 0
    assert _bucket(4) == 1
    assert _bucket(15) == 1
    assert _bucket(16) == 2
    assert _bucket(4 ** 6) == 6


def test_static_selector_always_same_strategy():
    selector = StaticSelector("fusion-dx")
    workload = build_workload("fft", "tiny")
    chosen = {selector.select(i, t).key
              for i, t in enumerate(workload.invocations)}
    assert chosen == {"fusion-dx"}


def test_schedule_selector_clamps_to_last_entry():
    selector = ScheduleSelector(("scratch", "shared"))
    trace = build_workload("fft", "tiny").invocations[0]
    assert selector.select(0, trace).key == "scratch"
    assert selector.select(1, trace).key == "shared"
    assert selector.select(99, trace).key == "shared"
    with pytest.raises(ConfigError):
        ScheduleSelector(())


def test_bandit_tries_every_arm_before_exploiting():
    workload = build_workload("fft", "tiny")
    arms = ("scratch", "shared", "fusion")
    bandit = BanditSelector(arms, workload, epsilon=0.0)
    trace = workload.invocations[0]
    seen = []
    for _ in arms:
        strategy = bandit.select(0, trace)
        seen.append(strategy.key)
        bandit.observe(0, trace, strategy, 1000.0, None)
    assert seen == list(arms)  # untried-first, in arm order


def test_bandit_greedy_prefers_cheapest_observed_arm():
    workload = build_workload("fft", "tiny")
    bandit = BanditSelector(("scratch", "fusion"), workload,
                            epsilon=0.0)
    trace = workload.invocations[0]
    bandit.observe(0, trace, bandit.arms[0], 9000.0, None)
    bandit.observe(0, trace, bandit.arms[1], 100.0, None)
    assert bandit.select(0, trace).key == "fusion"


def test_bandit_exploit_freezes_learning():
    workload = build_workload("fft", "tiny")
    bandit = BanditSelector(("scratch", "fusion"), workload,
                            epsilon=0.0)
    trace = workload.invocations[0]
    bandit.observe(0, trace, bandit.arms[1], 100.0, None)
    bandit.exploit = True
    bandit.observe(0, trace, bandit.arms[0], 1.0, None)  # ignored
    assert bandit._observations == 1
    assert bandit.select(0, trace).key == "fusion"


def test_bandit_is_deterministic_under_fixed_seed():
    workload = build_workload("fft", "tiny")

    def sequence():
        bandit = BanditSelector(("scratch", "shared", "fusion"),
                                workload, epsilon=0.5, seed=7)
        keys = []
        for i, trace in enumerate(workload.invocations):
            strategy = bandit.select(i, trace)
            keys.append(strategy.key)
            bandit.observe(i, trace, strategy, 100.0 * (i + 1), None)
        return keys

    assert sequence() == sequence()


def test_make_selector_maps_config_names():
    workload = build_workload("fft", "tiny")
    assert isinstance(make_selector(PolicyConfig(), workload),
                      StaticSelector)
    bandit = make_selector(PolicyConfig(selector="bandit",
                                        epsilon=0.25), workload)
    assert bandit.epsilon == 0.25 and bandit.ucb_c == 0.0
    ucb = make_selector(PolicyConfig(selector="ucb", ucb_c=2.0),
                        workload)
    assert ucb.epsilon == 0.0 and ucb.ucb_c == 2.0


# -- telemetry ---------------------------------------------------------------

def test_invocation_features_shapes():
    workload = build_workload("fft", "tiny")
    features = invocation_features(workload)
    assert len(features) == len(workload.invocations)
    assert features[0][0] == -1            # first touch
    assert all(footprint > 0 for _reuse, footprint in features)
    assert invocation_features(workload) is features  # memoised


def test_telemetry_from_delta_extracts_suffixes():
    trace = build_workload("fft", "tiny").invocations[0]
    record = telemetry_from_delta(
        3, trace, "fusion", 250.0,
        {"l1x.dyn_energy_pj": 40.0, "leak.energy_pj": 2.0,
         "acc.write_epoch_stall_cycles": 12.0, "l1x.misses": 9},
        reuse_distance=-1, footprint_blocks=17, lease_expiries=2)
    assert record.index == 3
    assert record.function == trace.name
    assert record.energy_pj == 42.0
    assert record.contention_stalls == 12.0
    assert record.lease_expiries == 2
    assert record.footprint_blocks == 17


def test_policy_system_records_telemetry_on_schedule_runs():
    system, result = _policy_run(
        "fft", selector="schedule", schedule=("fusion",))
    invocations = len(system.workload.invocations)
    assert len(system.telemetry) == invocations
    assert [r.index for r in system.telemetry] == list(
        range(invocations))
    assert all(r.strategy == "fusion" for r in system.telemetry)
    assert sum(r.cycles for r in system.telemetry) == pytest.approx(
        result.accel_cycles)
    assert result.stat("policy.strategy.fusion.invocations") == \
        invocations
    assert result.stat("policy.inv.0.cycles") == \
        system.telemetry[0].cycles


def test_policy_static_run_skips_telemetry():
    system, result = _policy_run("fft", selector="static",
                                 static_strategy="fusion")
    assert system.telemetry == []
    assert result.stat("policy.inv.0.cycles") == 0  # not published


def test_short_lease_run_counts_expiries():
    system, _result = _policy_run(
        "fft", selector="schedule", schedule=("fusion:lease=1",))
    assert sum(r.lease_expiries for r in system.telemetry) > 0


def test_mixed_schedule_exercises_cross_family_coherence():
    """Alternating scratchpad-DMA and fusion invocations must recall
    tile copies through the host directory — the new DMA paths."""
    workload = build_workload("fft", "tiny")
    schedule = tuple("scratch" if i % 2 else "fusion"
                     for i in range(len(workload.invocations)))
    _system, result = _policy_run("fft", selector="schedule",
                                  schedule=schedule)
    assert result.stat("mesi.fwd_to_tile") > 0
    assert result.stat("dma.bytes_in") > 0
    assert result.stat("l0x.axc0.hits") > 0


# -- engine ------------------------------------------------------------------

def test_policy_grid_pairs_legacy_and_uniform_requests():
    requests = policy_grid("tiny", benchmarks=("fft",))
    systems = [request.system for request in requests]
    assert systems.count("POLICY") == 4
    assert {"SCRATCH", "SHARED", "FUSION", "FUSION-Dx"} <= set(systems)


@pytest.mark.parametrize("bench", ("fft", "histogram", "adpcm"))
def test_oracle_never_worse_than_best_static(bench):
    report = evaluate_selectors(bench, size="tiny")
    assert report["oracle"] <= report["best_static"]
    assert report["best_static"] == min(
        report["static_cycles"].values())
    assert len(report["mixed_schedule"]) == report["invocations"]
    assert set(report["mixed_schedule"]) <= set(report["strategies"])


def test_trained_bandit_closes_gap_on_fft():
    report = evaluate_selectors("fft", size="tiny")
    trained = train_bandit("fft", size="tiny", episodes=5,
                           epsilon=0.0)
    assert trained["episodes"] == 5
    assert len(trained["episode_cycles"]) == 5
    closed = gap_closed(report["best_static"], report["oracle"],
                        trained["cycles"])
    assert closed >= 0.5


def test_gap_closed_semantics():
    assert gap_closed(100.0, 80.0, 80.0) == pytest.approx(1.0)
    assert gap_closed(100.0, 80.0, 90.0) == pytest.approx(0.5)
    assert gap_closed(100.0, 80.0, 100.0) == pytest.approx(0.0)
    assert gap_closed(100.0, 80.0, 120.0) == pytest.approx(-1.0)
    assert gap_closed(100.0, 100.0, 100.0) == 1.0   # no gap, matched
    assert gap_closed(100.0, 100.0, 105.0) == 0.0   # no gap, worse
